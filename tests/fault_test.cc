// Fault-injection and recovery tests (docs/ROBUSTNESS.md): determinism of
// the seeded injector, arena health/quarantine/timeout behaviour, typed
// deadline failures, and the end-to-end chaos sweep — every builtin app on
// 1/2/4 GPUs under a seeded fault plan must finish validator-clean or with
// a typed error, with no hangs, no leaked leases, and the fault accounting
// identity  fault.injected == recovery.retries + recovery.degraded +
// recovery.failures  intact.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/metrics.h"
#include "service/arena.h"
#include "service/builtin_apps.h"
#include "service/protocol.h"
#include "service/service.h"
#include "sim/fault.h"
#include "sim/platform.h"

namespace accmg::service {
namespace {

using sim::FaultInjector;
using sim::FaultPlan;
using sim::FaultSite;

// The metrics registry is process-global and shared across every test in
// this binary, so all assertions work on deltas over a snapshot.
struct FaultAccounting {
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failures = 0;

  static FaultAccounting Snapshot() {
    auto& reg = metrics::Registry::Global();
    FaultAccounting s;
    s.injected = reg.counter("fault.injected").value();
    s.retries = reg.counter("recovery.retries").value();
    s.degraded = reg.counter("recovery.degraded").value();
    s.failures = reg.counter("recovery.failures").value();
    return s;
  }

  FaultAccounting DeltaSince(const FaultAccounting& base) const {
    return FaultAccounting{injected - base.injected, retries - base.retries,
                           degraded - base.degraded, failures - base.failures};
  }
};

// ------------------------------------------------------------- injector --

TEST(FaultPlanTest, ParseRoundTripsAndRejectsUnknownKeys) {
  const FaultPlan plan = FaultPlan::Parse(
      "seed=7,kernel=0.01,transfer=0.02,stall=0.05,stall-factor=30,"
      "death=0.001,max-deaths=2");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.kernel_fail_p, 0.01);
  EXPECT_DOUBLE_EQ(plan.h2d_fail_p, 0.02);  // transfer= sets all three
  EXPECT_DOUBLE_EQ(plan.d2h_fail_p, 0.02);
  EXPECT_DOUBLE_EQ(plan.p2p_fail_p, 0.02);
  EXPECT_DOUBLE_EQ(plan.stall_p, 0.05);
  EXPECT_DOUBLE_EQ(plan.stall_factor, 30.0);
  EXPECT_DOUBLE_EQ(plan.device_loss_p, 0.001);
  EXPECT_EQ(plan.max_device_losses, 2);
  EXPECT_EQ(FaultPlan::Parse(plan.ToString()).ToString(), plan.ToString());
  EXPECT_THROW(FaultPlan::Parse("seed=1,bogus=0.5"), InvalidArgumentError);
}

// Records what one OnOperation call did, for step-by-step comparison.
std::string Outcome(FaultInjector& faults, FaultSite site, int device) {
  try {
    const double mult = faults.OnOperation(site, device);
    return mult == 1.0 ? "ok" : "stall:" + std::to_string(mult);
  } catch (const DeviceLostError&) {
    return "lost";
  } catch (const TransferError&) {
    return "transfer";
  } catch (const KernelLaunchError&) {
    return "kernel";
  }
}

TEST(FaultInjectorTest, SameSeedSameOpSequenceSameDecisions) {
  const FaultPlan plan = FaultPlan::Parse(
      "seed=42,kernel=0.2,transfer=0.2,stall=0.1,death=0.05");
  FaultInjector a;
  FaultInjector b;
  a.Arm(plan, 4);
  b.Arm(plan, 4);
  const FaultSite sites[] = {FaultSite::kKernel, FaultSite::kH2D,
                             FaultSite::kD2H, FaultSite::kP2P};
  for (int op = 0; op < 400; ++op) {
    const FaultSite site = sites[op % 4];
    const int device = (op / 4) % 4;
    ASSERT_EQ(Outcome(a, site, device), Outcome(b, site, device))
        << "diverged at op " << op;
  }
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_EQ(a.deaths(), b.deaths());
  EXPECT_EQ(a.stalls(), b.stalls());
  EXPECT_GT(a.injected(), 0u);  // the plan is aggressive enough to fire
}

TEST(FaultInjectorTest, DefaultPlanSparesTheLastSurvivor) {
  FaultInjector faults;
  faults.Arm(FaultPlan::Parse("seed=1,death=1"), 2);  // max-deaths default -1
  for (int device : {0, 1}) {
    try {
      faults.OnOperation(FaultSite::kKernel, device);
    } catch (const DeviceLostError&) {
    }
  }
  EXPECT_EQ(faults.deaths(), 1);
  const int survivor = faults.alive(0) ? 0 : 1;
  // Operations on the sole survivor keep succeeding: death is suppressed.
  for (int op = 0; op < 50; ++op) {
    EXPECT_NO_THROW(faults.OnOperation(FaultSite::kKernel, survivor));
  }
}

TEST(FaultInjectorTest, DeadDeviceEchoesAreNotNewInjections) {
  FaultInjector faults;
  faults.Arm(FaultPlan::Parse("seed=1,death=1,max-deaths=1"), 2);
  EXPECT_THROW(faults.OnOperation(FaultSite::kH2D, 0), DeviceLostError);
  const std::uint64_t injected_after_kill = faults.injected();
  // Further operations on the dead device echo the loss but do not count
  // as new injections — recovery would otherwise double-book them.
  EXPECT_THROW(faults.OnOperation(FaultSite::kH2D, 0), DeviceLostError);
  EXPECT_THROW(faults.OnOperation(FaultSite::kKernel, 0), DeviceLostError);
  EXPECT_EQ(faults.injected(), injected_after_kill);
  EXPECT_EQ(faults.dead_devices(), std::vector<int>{0});
}

// ---------------------------------------------------------------- arena --

TEST(ArenaHealthTest, MarkDeadRevokesAndUnsatisfiableRequestsFailFast) {
  DeviceArena arena(2);
  arena.MarkDead(0);
  EXPECT_EQ(arena.healthy_count(), 1);
  EXPECT_FALSE(arena.alive(0));
  EXPECT_THROW(arena.Acquire(2), DeviceError);  // can never be satisfied
  DeviceArena::Lease lease = arena.Acquire(1);
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease.devices(), std::vector<int>{1});  // never the dead one
}

TEST(ArenaHealthTest, BoundedAcquireTimesOutWithoutWedgingTheLine) {
  DeviceArena arena(1);
  DeviceArena::Lease held = arena.Acquire(1);
  DeviceArena::Lease timed_out =
      arena.Acquire(1, std::chrono::milliseconds(10));
  EXPECT_FALSE(timed_out.valid());
  held.Release();
  // The abandoned ticket must not block the next caller.
  DeviceArena::Lease next = arena.Acquire(1, std::chrono::milliseconds(1000));
  EXPECT_TRUE(next.valid());
}

TEST(ArenaHealthTest, QuarantinedDevicesAreLastResort) {
  DeviceArena arena(3);
  arena.MarkSuspect(0, 2);
  DeviceArena::Lease trusted = arena.Acquire(2);
  EXPECT_EQ(trusted.devices(), (std::vector<int>{1, 2}));
  // Nothing else free: the quarantined device still serves (no deadlock),
  // burning one unit of probation per grant.
  for (int grant = 0; grant < 2; ++grant) {
    DeviceArena::Lease last_resort = arena.Acquire(1);
    EXPECT_EQ(last_resort.devices(), std::vector<int>{0});
  }
}

TEST(ArenaHealthTest, LeaseIsReleasedOnEveryExitPath) {
  DeviceArena arena(2);
  try {
    DeviceArena::Lease lease = arena.Acquire(2);
    ASSERT_EQ(arena.busy_count(), 2);
    throw std::runtime_error("worker died mid-job");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(arena.busy_count(), 0);  // RAII released; nothing leaked
}

// ------------------------------------------------------------- protocol --

TEST(FaultProtocolTest, ResultAcceptsBoundedWaitAndTypedFailures) {
  const Request bounded = ParseRequest("result 3 250");
  EXPECT_EQ(bounded.kind, Request::Kind::kResult);
  EXPECT_EQ(bounded.job_id, 3);
  EXPECT_DOUBLE_EQ(bounded.timeout_ms, 250);
  const Request blocking = ParseRequest("result 3");
  EXPECT_DOUBLE_EQ(blocking.timeout_ms, -1);
  EXPECT_EQ(ParseRequest("result 3 soon").kind, Request::Kind::kInvalid);

  JobResult failed;
  failed.job_id = 9;
  failed.state = JobState::kFailed;
  failed.error_kind = "device_lost";
  failed.retries = 2;
  failed.error = "device 1 lost";
  const std::string line = FormatResultLine(failed);
  EXPECT_NE(line.find("kind=device_lost"), std::string::npos) << line;
  EXPECT_NE(line.find("retries=2"), std::string::npos) << line;
}

// ------------------------------------------------------------ deadlines --

TEST(DeadlineTest, ExpiredQueuedJobFailsTypedWithoutRunning) {
  auto platform = sim::MakeSupercomputerNode(2);
  AccService::Config config;
  config.platform = platform.get();
  config.workers = 1;
  AccService service(config);

  AppJobOptions options;
  options.app = "bfs";
  JobRequest request = MakeAppJob(options);
  request.deadline_ms = 1e-3;  // expired by the time a worker pops it
  const JobResult result = service.Wait(service.Submit(std::move(request)));
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_EQ(result.error_kind, "timeout");
  EXPECT_NE(result.error.find("queued"), std::string::npos) << result.error;
}

TEST(DeadlineTest, SimDeadlineSurfacesAsTypedTimeout) {
  auto platform = sim::MakeSupercomputerNode(2);
  AccService::Config config;
  config.platform = platform.get();
  config.workers = 1;
  AccService service(config);

  AppJobOptions options;
  options.app = "bfs";  // iterative: many offloads, so a later interrupt
                        // check always observes the expired deadline
  options.gpus = 2;
  // The first offload advances the simulated clock past this, so the next
  // check — host statement or offload entry — throws JobTimeoutError.
  options.exec.deadline_sim_s = 1e-12;
  const JobResult result = service.Wait(service.Submit(MakeAppJob(options)));
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_EQ(result.error_kind, "timeout");
}

// ---------------------------------------------------------- chaos sweep --

TEST(ChaosSweepTest, EveryAppEveryWidthFinishesCleanOrTyped) {
  const FaultAccounting before = FaultAccounting::Snapshot();
  int done_jobs = 0;
  int typed_failures = 0;

  for (const int gpus : {1, 2, 4}) {
    auto platform = sim::MakeSupercomputerNode(4);
    platform->ArmFaults(FaultPlan::Parse(
        "seed=" + std::to_string(100 + gpus) +
        ",kernel=0.03,transfer=0.03,stall=0.02,death=0.005"));

    AccService::Config config;
    config.platform = platform.get();
    config.workers = 2;
    config.job_retries = 3;
    config.default_deadline_ms = 60000;  // no-hang backstop, not a target
    AccService service(config);

    std::vector<int> ids;
    std::vector<std::shared_ptr<AppJobOutcome>> outcomes;
    for (const char* app : {"md", "kmeans", "bfs", "spmv"}) {
      AppJobOptions options;
      options.app = app;
      options.gpus = gpus;
      options.validate_result = true;
      auto outcome = std::make_shared<AppJobOutcome>();
      const int id = service.Submit(MakeAppJob(options, outcome));
      ASSERT_GE(id, 0);
      ids.push_back(id);
      outcomes.push_back(std::move(outcome));
    }

    for (std::size_t i = 0; i < ids.size(); ++i) {
      // The bounded wait is the no-hang assertion: a wedged job trips this
      // instead of freezing the suite.
      std::optional<JobResult> result =
          service.WaitFor(ids[i], std::chrono::seconds(120));
      ASSERT_TRUE(result.has_value()) << "job " << ids[i] << " hung";
      if (result->state == JobState::kDone) {
        ++done_jobs;
        ASSERT_TRUE(outcomes[i]->checked);
        EXPECT_TRUE(outcomes[i]->ok) << outcomes[i]->detail;
        // Billing self-consistency: a finished job billed real work onto
        // a lease no wider than it asked for.
        EXPECT_GT(result->report.counters.kernel_launches, 0u);
        EXPECT_LE(static_cast<int>(result->devices.size()), gpus);
      } else {
        ++typed_failures;
        EXPECT_FALSE(result->error_kind.empty()) << result->error;
      }
    }

    service.Drain();
    EXPECT_EQ(service.arena().busy_count(), 0);  // no leaked leases
  }

  EXPECT_EQ(done_jobs + typed_failures, 12);
  EXPECT_GT(done_jobs, 0);  // recovery actually saves jobs under this plan

  const FaultAccounting delta = FaultAccounting::Snapshot().DeltaSince(before);
  EXPECT_GT(delta.injected, 0u) << "the plan never fired — sweep is vacuous";
  EXPECT_EQ(delta.injected, delta.retries + delta.degraded + delta.failures)
      << "every injected fault must be booked as exactly one of "
         "retried/degraded/failed";
}

TEST(ChaosSweepTest, DeviceDeathDegradesOntoSurvivorsAndStillValidates) {
  auto platform = sim::MakeSupercomputerNode(4);
  platform->ArmFaults(FaultPlan::Parse("seed=5,death=0.2,max-deaths=3"));

  AccService::Config config;
  config.platform = platform.get();
  config.workers = 1;
  config.job_retries = 4;
  AccService service(config);

  AppJobOptions options;
  options.app = "md";
  options.gpus = 4;
  options.validate_result = true;
  auto outcome = std::make_shared<AppJobOutcome>();
  std::optional<JobResult> result = service.WaitFor(
      service.Submit(MakeAppJob(options, outcome)), std::chrono::seconds(120));
  ASSERT_TRUE(result.has_value()) << "degraded job hung";

  // Deaths at 20% per op across 4 devices are certain with this seed; the
  // job must come back either recovered on the survivors (validator-clean)
  // or as a typed device_lost failure — never anything untyped.
  EXPECT_GT(platform->faults().deaths(), 0);
  if (result->state == JobState::kDone) {
    EXPECT_TRUE(outcome->ok) << outcome->detail;
  } else {
    EXPECT_EQ(result->error_kind, "device_lost");
  }
  // The arena revoked what the injector killed.
  for (int dead : platform->faults().dead_devices()) {
    EXPECT_FALSE(service.arena().alive(dead));
  }
  EXPECT_EQ(service.arena().busy_count(), 0);
}

}  // namespace
}  // namespace accmg::service
