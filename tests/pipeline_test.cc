// End-to-end pipeline tests: OpenACC source -> translator -> multi-GPU
// execution, checked against native host references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg {
namespace {

using runtime::AccProgram;
using runtime::ProgramRunner;
using runtime::RunConfig;
using runtime::RunReport;

constexpr char kSaxpySource[] = R"(
void saxpy(int n, float a, float* x, float* y) {
  #pragma acc data copyin(x[0:n]) copy(y[0:n])
  {
    #pragma acc localaccess(x: stride(1)) (y: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      y[i] = a * x[i] + y[i];
    }
  }
}
)";

constexpr int kN = 4096;

class SaxpyTest : public ::testing::TestWithParam<int> {};

TEST_P(SaxpyTest, MatchesReferenceOnNGpus) {
  const int num_gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(3);
  AccProgram program = AccProgram::FromSource("saxpy", kSaxpySource);

  std::vector<float> x(kN), y(kN), expected(kN);
  for (int i = 0; i < kN; ++i) {
    x[i] = 0.5f * static_cast<float>(i);
    y[i] = 2.0f - 0.001f * static_cast<float>(i);
    expected[i] = 1.5f * x[i] + y[i];
  }

  ProgramRunner runner(program,
                       RunConfig{.platform = platform.get(),
                                 .num_gpus = num_gpus});
  runner.BindArray("x", x.data(), ir::ValType::kF32, kN);
  runner.BindArray("y", y.data(), ir::ValType::kF32, kN);
  runner.BindScalar("n", static_cast<std::int64_t>(kN));
  runner.BindScalarF32("a", 1.5f);
  const RunReport report = runner.Run("saxpy");

  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(y[i], expected[i]) << "at index " << i;
  }
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.counters.h2d_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, SaxpyTest, ::testing::Values(1, 2, 3));

TEST(PipelineTest, CpuBaselineMatchesReference) {
  auto platform = sim::MakeDesktopMachine(2);
  AccProgram program = AccProgram::FromSource("saxpy", kSaxpySource);

  std::vector<float> x(kN), y(kN), expected(kN);
  for (int i = 0; i < kN; ++i) {
    x[i] = 0.25f * static_cast<float>(i);
    y[i] = 1.0f;
    expected[i] = 3.0f * x[i] + y[i];
  }
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .use_cpu = true});
  runner.BindArray("x", x.data(), ir::ValType::kF32, kN);
  runner.BindArray("y", y.data(), ir::ValType::kF32, kN);
  runner.BindScalar("n", static_cast<std::int64_t>(kN));
  runner.BindScalarF32("a", 3.0f);
  const RunReport report = runner.Run("saxpy");
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(y[i], expected[i]) << "at index " << i;
  }
  EXPECT_GT(report.time[sim::TimeCategory::kHostCompute], 0.0);
}

TEST(PipelineTest, ScalarReduction) {
  constexpr char kSource[] = R"(
void dotprod(int n, double* x, double* y, double result) {
  double sum = 0.0;
  #pragma acc parallel loop reduction(+:sum) copyin(x[0:n], y[0:n])
  for (int i = 0; i < n; i++) {
    sum += x[i] * y[i];
  }
  result = sum;
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  AccProgram program = AccProgram::FromSource("dotprod", kSource);

  std::vector<double> x(1000), y(1000);
  double expected = 0;
  for (int i = 0; i < 1000; ++i) {
    x[i] = i * 0.5;
    y[i] = 1.0 / (i + 1);
    expected += x[i] * y[i];
  }
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("x", x.data(), ir::ValType::kF64, 1000);
  runner.BindArray("y", y.data(), ir::ValType::kF64, 1000);
  runner.BindScalar("n", static_cast<std::int64_t>(1000));
  runner.BindScalar("result", 0.0);
  runner.Run("dotprod");
  EXPECT_NEAR(runner.ScalarAfterRun("result").AsDouble(), expected,
              1e-9 * std::fabs(expected));
}

TEST(PipelineTest, ReductionToArrayHistogram) {
  constexpr char kSource[] = R"(
void histogram(int n, int k, int* keys, int* hist) {
  #pragma acc data copyin(keys[0:n]) copy(hist[0:k])
  {
    #pragma acc localaccess(keys: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      int bucket = keys[i] % k;
      #pragma acc reductiontoarray(+: hist[0:k])
      hist[bucket] += 1;
    }
  }
}
)";
  auto platform = sim::MakeSupercomputerNode(3);
  AccProgram program = AccProgram::FromSource("histogram", kSource);

  constexpr int n = 10000, k = 17;
  std::vector<std::int32_t> keys(n), hist(k, 5), expected(k, 5);
  for (int i = 0; i < n; ++i) {
    keys[i] = (i * 2654435761u) % 1000003;
    expected[keys[i] % k] += 1;
  }
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 3});
  runner.BindArray("keys", keys.data(), ir::ValType::kI32, n);
  runner.BindArray("hist", hist.data(), ir::ValType::kI32, k);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.BindScalar("k", static_cast<std::int64_t>(k));
  runner.Run("histogram");
  for (int b = 0; b < k; ++b) {
    EXPECT_EQ(hist[b], expected[b]) << "bucket " << b;
  }
}

TEST(PipelineTest, IrregularScatterWritesThroughMissBuffer) {
  // Writes land at a permuted position: with localaccess on the destination
  // the translator cannot prove locality, so the write-miss machinery must
  // deliver remote elements.
  constexpr char kSource[] = R"(
void scatter(int n, int* perm, int* src, int* dst) {
  #pragma acc data copyin(perm[0:n], src[0:n]) copy(dst[0:n])
  {
    #pragma acc localaccess(src: stride(1)) (dst: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      dst[perm[i]] = src[i] * 3;
    }
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  AccProgram program = AccProgram::FromSource("scatter", kSource);

  constexpr int n = 5000;
  std::vector<std::int32_t> perm(n), src(n), dst(n, -1), expected(n);
  for (int i = 0; i < n; ++i) {
    perm[i] = (i * 7919) % n;  // 7919 coprime with 5000? gcd(7919,5000)=1
    src[i] = i;
  }
  // perm might not be a bijection if gcd != 1; compute reference faithfully.
  for (int i = 0; i < n; ++i) expected[static_cast<std::size_t>(perm[i])] = -1;
  for (int i = 0; i < n; ++i) {
    expected[static_cast<std::size_t>(perm[i])] = src[i] * 3;
  }
  for (int i = 0; i < n; ++i) {
    if (expected[i] == 0 && dst[i] == -1) continue;
  }
  std::vector<std::int32_t> reference(n, -1);
  for (int i = 0; i < n; ++i) {
    reference[static_cast<std::size_t>(perm[i])] = src[i] * 3;
  }

  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("perm", perm.data(), ir::ValType::kI32, n);
  runner.BindArray("src", src.data(), ir::ValType::kI32, n);
  runner.BindArray("dst", dst.data(), ir::ValType::kI32, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  const RunReport report = runner.Run("scatter");
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(dst[i], reference[i]) << "at index " << i;
  }
  // With 2 GPUs, roughly half the writes miss.
  EXPECT_GT(report.comm.miss_records_replayed, 0u);
}

TEST(PipelineTest, ReplicatedWritePropagationAcrossKernels) {
  // Two-array Jacobi with both arrays replicated (no localaccess): after the
  // first kernel each GPU has written only its partition of `out`, and the
  // copy-back kernel plus the next iteration's neighbour reads only work if
  // the dirty-bit propagation made the replicas coherent between kernels.
  constexpr char kSource[] = R"(
void jacobi(int n, int iters, double* in, double* out) {
  #pragma acc data copy(in[0:n]) create(out[0:n])
  {
    for (int t = 0; t < iters; t++) {
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        int left = i - 1;
        int right = i + 1;
        if (left < 0) { left = 0; }
        if (right >= n) { right = n - 1; }
        out[i] = 0.25 * in[left] + 0.5 * in[i] + 0.25 * in[right];
      }
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        in[i] = out[i];
      }
    }
  }
}
)";
  constexpr int n = 512, iters = 4;
  auto reference = [&] {
    std::vector<double> v(n), tmp(n);
    for (int i = 0; i < n; ++i) v[i] = (i % 13) * 1.0;
    for (int t = 0; t < iters; ++t) {
      for (int i = 0; i < n; ++i) {
        const int l = std::max(0, i - 1);
        const int r = std::min(n - 1, i + 1);
        tmp[i] = 0.25 * v[l] + 0.5 * v[i] + 0.25 * v[r];
      }
      v = tmp;
    }
    return v;
  }();

  for (int gpus : {1, 2, 3}) {
    auto platform = sim::MakeSupercomputerNode(3);
    AccProgram program = AccProgram::FromSource("jacobi", kSource);
    std::vector<double> in(n), out(n, 0.0);
    for (int i = 0; i < n; ++i) in[i] = (i % 13) * 1.0;
    ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                            .num_gpus = gpus});
    runner.BindArray("in", in.data(), ir::ValType::kF64, n);
    runner.BindArray("out", out.data(), ir::ValType::kF64, n);
    runner.BindScalar("n", static_cast<std::int64_t>(n));
    runner.BindScalar("iters", static_cast<std::int64_t>(iters));
    runner.Run("jacobi");
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(in[i], reference[i]) << "gpus=" << gpus << " index " << i;
    }
  }
}

}  // namespace
}  // namespace accmg
