// Assorted coverage: kernels-directive path, present clause, typed arrays
// (i64/f64) end-to-end, managed-array edge cases, logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/log.h"
#include "common/stopwatch.h"
#include "runtime/managed_array.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg {
namespace {

using runtime::AccProgram;
using runtime::ProgramRunner;
using runtime::RunConfig;

TEST(MiscTest, KernelsDirectiveWorksLikeParallel) {
  constexpr char kSource[] = R"(
void f(int n, double* a) {
  #pragma acc kernels loop copy(a[0:n])
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + 1.0;
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<double> a(32, 1.0);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kF64, 32);
  runner.BindScalar("n", static_cast<std::int64_t>(32));
  runner.Run("f");
  for (double v : a) EXPECT_EQ(v, 2.0);
}

TEST(MiscTest, PresentClauseAssertsEnclosingRegion) {
  constexpr char kOk[] = R"(
void f(int n, int* a) {
  #pragma acc data copy(a[0:n])
  {
    #pragma acc data present(a)
    {
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) { a[i] = 1; }
    }
  }
}
)";
  auto platform = sim::MakeDesktopMachine(1);
  const AccProgram ok = AccProgram::FromSource("f", kOk);
  std::vector<std::int32_t> a(8, 0);
  ProgramRunner runner(ok, RunConfig{.platform = platform.get()});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 8);
  runner.BindScalar("n", static_cast<std::int64_t>(8));
  EXPECT_NO_THROW(runner.Run("f"));
  EXPECT_EQ(a[3], 1);

  constexpr char kBad[] = R"(
void f(int n, int* a) {
  #pragma acc data present(a)
  {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) { a[i] = 1; }
  }
}
)";
  const AccProgram bad = AccProgram::FromSource("f", kBad);
  ProgramRunner bad_runner(bad, RunConfig{.platform = platform.get()});
  bad_runner.BindArray("a", a.data(), ir::ValType::kI32, 8);
  bad_runner.BindScalar("n", static_cast<std::int64_t>(8));
  EXPECT_THROW(bad_runner.Run("f"), InvalidArgumentError);
}

TEST(MiscTest, Int64AndFloat64ArraysEndToEnd) {
  constexpr char kSource[] = R"(
void f(int n, long* keys, double* vals) {
  #pragma acc localaccess(keys: stride(1)) (vals: stride(1))
  #pragma acc parallel loop copy(keys[0:n], vals[0:n])
  for (int i = 0; i < n; i++) {
    keys[i] = keys[i] * 1000003;
    vals[i] = vals[i] / 3.0;
  }
}
)";
  auto platform = sim::MakeSupercomputerNode(3);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  constexpr int n = 100;
  std::vector<std::int64_t> keys(n);
  std::vector<double> vals(n);
  std::iota(keys.begin(), keys.end(), 1ll << 20);
  for (int i = 0; i < n; ++i) vals[i] = i * 1.25;
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 3});
  runner.BindArray("keys", keys.data(), ir::ValType::kI64, n);
  runner.BindArray("vals", vals.data(), ir::ValType::kF64, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.Run("f");
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(keys[i], ((1ll << 20) + i) * 1000003ll);
    EXPECT_EQ(vals[i], (i * 1.25) / 3.0);
  }
}

TEST(MiscTest, OwnerOfRequiresValidShards) {
  std::vector<float> host(30, 0.0f);
  runtime::ManagedArray array("a", ir::ValType::kF32, 30, host.data(), 2);
  EXPECT_EQ(array.OwnerOf(5), -1);  // nothing placed yet
  array.shard(0).owned = runtime::Range{0, 15};
  array.shard(0).valid = true;
  array.shard(1).owned = runtime::Range{15, 30};
  array.shard(1).valid = false;  // stale shard never owns
  EXPECT_EQ(array.OwnerOf(5), 0);
  EXPECT_EQ(array.OwnerOf(20), -1);
}

TEST(MiscTest, ManagedArrayValidation) {
  std::vector<float> host(4);
  EXPECT_THROW(
      runtime::ManagedArray("a", ir::ValType::kF32, 0, host.data(), 2),
      InvalidArgumentError);
  EXPECT_THROW(runtime::ManagedArray("a", ir::ValType::kF32, 4, nullptr, 2),
               InvalidArgumentError);
}

TEST(MiscTest, RangeHelpers) {
  const runtime::Range r{3, 7};
  EXPECT_EQ(r.size(), 4);
  EXPECT_TRUE(r.Contains(3));
  EXPECT_FALSE(r.Contains(7));
  EXPECT_TRUE((runtime::Range{5, 5}).empty());
  EXPECT_EQ((runtime::Range{9, 2}).size(), 0);
}

TEST(MiscTest, LogLevelFiltering) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  ACCMG_LOG(kDebug) << "should be filtered " << 42;
  ACCMG_LOG(kError) << "visible";
  SetLogLevel(before);
}

TEST(MiscTest, StopwatchAdvances) {
  Stopwatch watch;
  double last = watch.ElapsedSeconds();
  EXPECT_GE(last, 0.0);
  watch.Reset();
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

TEST(MiscTest, ConditionalExpressionInKernel) {
  constexpr char kSource[] = R"(
void f(int n, int* a) {
  #pragma acc localaccess(a: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[i] = i % 3 == 0 ? -i : i * 10;
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> a(30, 0);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 30);
  runner.BindScalar("n", static_cast<std::int64_t>(30));
  runner.Run("f");
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(a[i], i % 3 == 0 ? -i : i * 10) << i;
  }
}

TEST(MiscTest, ShortCircuitEvaluationInKernel) {
  // `i > 0 && a[i - 1] > 0` must not read a[-1] when i == 0; short-circuit
  // lowering is load-bearing for residency safety.
  constexpr char kSource[] = R"(
void f(int n, int* a, int* b) {
  #pragma acc localaccess(a: stride(1), left(1)) (b: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    if (i > 0 && a[i - 1] > 0) {
      b[i] = 1;
    } else {
      b[i] = 0;
    }
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  constexpr int n = 40;
  std::vector<std::int32_t> a(n), b(n, -1);
  for (int i = 0; i < n; ++i) a[i] = (i % 2 == 0) ? 1 : -1;
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kI32, n);
  runner.BindArray("b", b.data(), ir::ValType::kI32, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  EXPECT_NO_THROW(runner.Run("f"));
  EXPECT_EQ(b[0], 0);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(b[i], a[i - 1] > 0 ? 1 : 0) << i;
  }
}

TEST(MiscTest, MinMaxScalarReductions) {
  constexpr char kSource[] = R"(
void f(int n, double* x, double lo, double hi) {
  double lowest = 1.0e300;
  double highest = -1.0e300;
  #pragma acc parallel loop reduction(min:lowest) reduction(max:highest)
  for (int i = 0; i < n; i++) {
    lowest = fmin(lowest, x[i]);
    highest = fmax(highest, x[i]);
  }
  lo = lowest;
  hi = highest;
}
)";
  auto platform = sim::MakeSupercomputerNode(3);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  constexpr int n = 1000;
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) x[i] = (i * 37 % 991) - 500.0;
  const double expected_lo = *std::min_element(x.begin(), x.end());
  const double expected_hi = *std::max_element(x.begin(), x.end());
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 3});
  runner.BindArray("x", x.data(), ir::ValType::kF64, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.BindScalar("lo", 0.0);
  runner.BindScalar("hi", 0.0);
  runner.Run("f");
  EXPECT_EQ(runner.ScalarAfterRun("lo").AsDouble(), expected_lo);
  EXPECT_EQ(runner.ScalarAfterRun("hi").AsDouble(), expected_hi);
}

}  // namespace
}  // namespace accmg
