// Tests for the later language/directive additions: do-while statements and
// unstructured enter/exit data regions.
#include <gtest/gtest.h>

#include "common/error.h"
#include "frontend/sema.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg {
namespace {

using runtime::AccProgram;
using runtime::ProgramRunner;
using runtime::RunConfig;

TEST(DoWhileTest, HostExecutionRunsBodyAtLeastOnce) {
  constexpr char kSource[] = R"(
void f(int start, int out) {
  int x = start;
  int count = 0;
  do {
    x = x - 1;
    count++;
  } while (x > 0);
  out = count;
}
)";
  auto platform = sim::MakeDesktopMachine(1);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  for (const auto& [start, expected] :
       {std::pair{5, 5}, std::pair{1, 1}, std::pair{0, 1},
        std::pair{-3, 1}}) {
    ProgramRunner runner(program, RunConfig{.platform = platform.get()});
    runner.BindScalar("start", static_cast<std::int64_t>(start));
    runner.BindScalar("out", static_cast<std::int64_t>(0));
    runner.Run("f");
    EXPECT_EQ(runner.ScalarAfterRun("out").AsInt(), expected)
        << "start=" << start;
  }
}

TEST(DoWhileTest, KernelExecutionMatchesReference) {
  // Collatz step counts per element: a data-dependent do-while in a kernel.
  constexpr char kSource[] = R"(
void collatz(int n, int* seeds, int* steps) {
  #pragma acc localaccess(seeds: stride(1)) (steps: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    int x = seeds[i];
    int count = 0;
    do {
      if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
      count++;
    } while (x != 1);
    steps[i] = count;
  }
}
)";
  constexpr int n = 500;
  std::vector<std::int32_t> seeds(n), steps(n, -1), expected(n);
  for (int i = 0; i < n; ++i) {
    seeds[i] = i + 2;
    int x = seeds[i], count = 0;
    do {
      x = (x % 2 == 0) ? x / 2 : 3 * x + 1;
      ++count;
    } while (x != 1);
    expected[i] = count;
  }

  const AccProgram program = AccProgram::FromSource("collatz", kSource);
  for (int gpus : {1, 3}) {
    auto platform = sim::MakeSupercomputerNode(3);
    std::vector<std::int32_t> out(n, -1);
    ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                            .num_gpus = gpus});
    runner.BindArray("seeds", seeds.data(), ir::ValType::kI32, n);
    runner.BindArray("steps", out.data(), ir::ValType::kI32, n);
    runner.BindScalar("n", static_cast<std::int64_t>(n));
    runner.Run("collatz");
    EXPECT_EQ(out, expected) << "gpus=" << gpus;
  }
  (void)steps;
}

TEST(EnterExitDataTest, UnstructuredLifetimesSpanKernels) {
  constexpr char kSource[] = R"(
void f(int n, int* a) {
  #pragma acc enter data copyin(a[0:n])
  ;
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[i] = a[i] + 1;
  }
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[i] = a[i] * 2;
  }
  #pragma acc exit data copyout(a[0:n])
  ;
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  // Compiled unfused so the lifetime demonstrably spans two kernel launches
  // (the default mid-end level would fuse these loops into one kernel).
  translator::CompileOptions copts;
  copts.opt_level = 0;
  const AccProgram program = AccProgram::FromSource("f", kSource, copts);
  std::vector<std::int32_t> a(64, 10);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 64);
  runner.BindScalar("n", static_cast<std::int64_t>(64));
  const runtime::RunReport report = runner.Run("f");
  for (auto v : a) EXPECT_EQ(v, 22);
  // The lifetime spans both kernels: the array uploads once, not per kernel.
  EXPECT_GE(report.loader.loads_skipped, 1u);
  EXPECT_EQ(platform->device(0).used_bytes(), 0u);  // exit data released it
}

TEST(EnterExitDataTest, DeleteDiscardsDeviceWrites) {
  constexpr char kSource[] = R"(
void f(int n, int* a) {
  #pragma acc enter data copyin(a[0:n])
  ;
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[i] = -777;
  }
  #pragma acc exit data delete(a)
  ;
}
)";
  auto platform = sim::MakeDesktopMachine(1);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> a(16, 5);
  ProgramRunner runner(program, RunConfig{.platform = platform.get()});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 16);
  runner.BindScalar("n", static_cast<std::int64_t>(16));
  runner.Run("f");
  for (auto v : a) EXPECT_EQ(v, 5);  // device writes were discarded
}

TEST(EnterExitDataTest, ClauseValidation) {
  EXPECT_THROW(AccProgram::FromSource("f", R"(
void f(int n, int* a) {
  #pragma acc enter data copyout(a[0:n])
  ;
})"),
               CompileError);
  EXPECT_THROW(AccProgram::FromSource("f", R"(
void f(int n, int* a) {
  #pragma acc exit data copyin(a[0:n])
  ;
})"),
               CompileError);
}

TEST(EnterExitDataTest, ExitWithoutEnterIsAnError) {
  constexpr char kSource[] = R"(
void f(int n, int* a) {
  #pragma acc exit data copyout(a[0:n])
  ;
}
)";
  auto platform = sim::MakeDesktopMachine(1);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> a(4, 0);
  ProgramRunner runner(program, RunConfig{.platform = platform.get()});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 4);
  runner.BindScalar("n", static_cast<std::int64_t>(4));
  EXPECT_THROW(runner.Run("f"), InvalidArgumentError);
}

}  // namespace
}  // namespace accmg
