// Tests for the correctness tooling added around the multi-GPU runtime:
//
//   * the static directive checker (translator/check.h) — proven-wrong
//     localaccess windows are CompileErrors, undecidable ones pass, and
//     reductiontoarray destinations cannot carry a localaccess spec;
//   * the runtime coherence validator (runtime/validator.h) — golden
//     shadow execution catches both residency faults (when the static
//     check is bypassed) and injected stale-replica corruption that the
//     coherence machinery cannot see;
//   * all four applications run divergence-free under validation on
//     multi-GPU configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>

#include "apps/bfs/bfs.h"
#include "apps/kmeans/kmeans.h"
#include "apps/md/md.h"
#include "apps/spmv/spmv.h"
#include "common/error.h"
#include "runtime/executor.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::runtime {
namespace {

// The deliberately wrong program of the negative tests: the stencil reads
// u[i + 1] but the localaccess declaration promises a halo-free window, so
// on >1 GPU each device's rightmost iteration reads an element its segment
// never loaded.
constexpr char kWrongHalo[] = R"(
void f(int n, float* u, float* out) {
  #pragma acc data copyin(u[0:n]) copyout(out[0:n])
  {
    #pragma acc localaccess(u: stride(1)) (out: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n - 1; i++) {
      out[i] = u[i + 1];
    }
  }
}
)";

constexpr char kRightHalo[] = R"(
void f(int n, float* u, float* out) {
  #pragma acc data copyin(u[0:n]) copyout(out[0:n])
  {
    #pragma acc localaccess(u: stride(1), right(1)) (out: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n - 1; i++) {
      out[i] = u[i + 1];
    }
  }
}
)";

// ---------------------------------------------------------------------------
// Static directive checker
// ---------------------------------------------------------------------------

TEST(DirectiveCheckerTest, RejectsProvenHaloViolation) {
  try {
    AccProgram::FromSource("wrong", kWrongHalo);
    FAIL() << "expected a CompileError for the missing right halo";
  } catch (const CompileError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("localaccess"), std::string::npos) << what;
    EXPECT_NE(what.find("'u'"), std::string::npos) << what;
    EXPECT_NE(what.find("right"), std::string::npos) << what;
  }
}

TEST(DirectiveCheckerTest, AcceptsCorrectHalo) {
  EXPECT_NO_THROW(AccProgram::FromSource("right", kRightHalo));
}

TEST(DirectiveCheckerTest, RejectsLeftEdgeViolation) {
  constexpr char kSource[] = R"(
void f(int n, float* u, float* out) {
  #pragma acc localaccess(u: stride(1), left(1)) (out: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    out[i] = u[i - 2];
  }
}
)";
  EXPECT_THROW(AccProgram::FromSource("left", kSource), CompileError);
}

TEST(DirectiveCheckerTest, InnerLoopBoundsParticipateInTheProof) {
  // The subscript u[i * 4 + j] is covered only because j's inner loop stays
  // within [0, 4); the checker must substitute those bounds, not give up.
  constexpr char kCovered[] = R"(
void f(int n, float* u, float* out) {
  #pragma acc localaccess(u: stride(4)) (out: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    float acc = 0.0f;
    for (int j = 0; j < 4; j++) {
      acc = acc + u[i * 4 + j];
    }
    out[i] = acc;
  }
}
)";
  EXPECT_NO_THROW(AccProgram::FromSource("covered", kCovered));

  // Same shape, but the inner loop overruns the declared stride window.
  constexpr char kOverrun[] = R"(
void f(int n, float* u, float* out) {
  #pragma acc localaccess(u: stride(4)) (out: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    float acc = 0.0f;
    for (int j = 0; j < 5; j++) {
      acc = acc + u[i * 4 + j];
    }
    out[i] = acc;
  }
}
)";
  EXPECT_THROW(AccProgram::FromSource("overrun", kOverrun), CompileError);
}

TEST(DirectiveCheckerTest, UndecidableSubscriptsPass) {
  // Indirect read: the runtime's residency enforcement is the backstop.
  constexpr char kSource[] = R"(
void f(int n, int* idx, float* u, float* out) {
  #pragma acc localaccess(idx: stride(1)) (out: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    out[i] = u[idx[i]];
  }
}
)";
  EXPECT_NO_THROW(AccProgram::FromSource("indirect", kSource));
}

TEST(DirectiveCheckerTest, RejectsReductionDestWithLocalAccess) {
  constexpr char kSource[] = R"(
void f(int n, int* bins, float* hist) {
  #pragma acc localaccess(bins: stride(1)) (hist: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    #pragma acc reductiontoarray(+: hist[0:n])
    hist[bins[i]] += 1.0f;
  }
}
)";
  try {
    AccProgram::FromSource("red", kSource);
    FAIL() << "expected a CompileError for localaccess on a reduction dest";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("reductiontoarray"),
              std::string::npos)
        << e.what();
  }
}

TEST(DirectiveCheckerTest, RejectsConstantBadWindowParameters) {
  constexpr char kBadStride[] = R"(
void f(int n, float* a) {
  #pragma acc localaccess(a: stride(0))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 0.0f; }
}
)";
  EXPECT_THROW(AccProgram::FromSource("stride0", kBadStride), CompileError);
}

TEST(DirectiveCheckerTest, AppSourcesPassTheChecker) {
  EXPECT_NO_THROW(AccProgram::FromSource("md", apps::MdSource()));
  EXPECT_NO_THROW(AccProgram::FromSource("kmeans", apps::KmeansSource()));
  EXPECT_NO_THROW(AccProgram::FromSource("bfs", apps::BfsSource()));
  EXPECT_NO_THROW(AccProgram::FromSource("spmv", apps::SpmvSource()));
}

TEST(DirectiveCheckerTest, BypassFlagSkipsTheChecker) {
  translator::CompileOptions bypass;
  bypass.check_directives = false;
  EXPECT_NO_THROW(AccProgram::FromSource("wrong", kWrongHalo, bypass));
}

// ---------------------------------------------------------------------------
// Runtime validator
// ---------------------------------------------------------------------------

TEST(ValidatorTest, CatchesBypassedWrongHaloAtRuntime) {
  translator::CompileOptions bypass;
  bypass.check_directives = false;
  const AccProgram program = AccProgram::FromSource("wrong", kWrongHalo,
                                                    bypass);
  auto platform = sim::MakeSupercomputerNode(3);
  constexpr int n = 64;
  std::vector<float> u(n, 1.0f), out(n, 0.0f);

  RunConfig config;
  config.platform = platform.get();
  config.num_gpus = 2;
  config.options.validate = true;
  ProgramRunner runner(program, config);
  runner.BindArray("u", u.data(), ir::ValType::kF32, n);
  runner.BindArray("out", out.data(), ir::ValType::kF32, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  try {
    runner.Run("f");
    FAIL() << "expected the validator to flag the residency fault";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("validate:"), std::string::npos) << what;
    EXPECT_NE(what.find("localaccess"), std::string::npos) << what;
  }
}

TEST(ValidatorTest, WrongHaloPassesOnOneGpu) {
  // The wrong declaration is only observable with a split iteration space —
  // the single-device golden configuration and a 1-GPU run agree.
  translator::CompileOptions bypass;
  bypass.check_directives = false;
  const AccProgram program = AccProgram::FromSource("wrong", kWrongHalo,
                                                    bypass);
  auto platform = sim::MakeSupercomputerNode(3);
  constexpr int n = 64;
  std::vector<float> u(n, 1.0f), out(n, 0.0f);
  RunConfig config;
  config.platform = platform.get();
  config.num_gpus = 1;
  config.options.validate = true;
  ProgramRunner runner(program, config);
  runner.BindArray("u", u.data(), ir::ValType::kF32, n);
  runner.BindArray("out", out.data(), ir::ValType::kF32, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  const RunReport report = runner.Run("f");
  EXPECT_EQ(report.validator.kernels_checked, 1u);
  EXPECT_EQ(report.validator.divergences, 0u);
}

TEST(ValidatorTest, DetectsInjectedStaleReplica) {
  constexpr char kSource[] = R"(
void f(int n, int* a, int* b) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    b[i] = a[i] * 2;
  }
}
)";
  const AccProgram program = AccProgram::FromSource("inject", kSource);
  const translator::CompiledFunction& fn = program.compiled().functions[0];
  ASSERT_EQ(fn.offloads.size(), 1u);
  const translator::LoopOffload& offload = fn.offloads[0];

  auto platform = sim::MakeSupercomputerNode(3);
  constexpr int n = 64;
  std::vector<std::int32_t> a(n), b(n, 0);
  std::iota(a.begin(), a.end(), 0);
  ManagedArray ma("a", ir::ValType::kI32, n, a.data(), 3);
  ManagedArray mb("b", ir::ValType::kI32, n, b.data(), 3);

  ExecOptions options;
  options.validate = true;
  Executor exec(*platform, options, {0, 1});
  translator::HostEnv env;
  for (const auto& param : fn.function->params) {
    if (!param->type.is_pointer) {
      env.SetScalar(*param, translator::TypedValue::OfInt(n));
    }
  }
  auto resolve = [&](const frontend::VarDecl& decl) -> ManagedArray& {
    return decl.name == "a" ? ma : mb;
  };

  exec.RunOffload(offload, env, resolve);
  ASSERT_NE(exec.validator(), nullptr);
  EXPECT_EQ(exec.validator()->stats().kernels_checked, 1u);
  EXPECT_EQ(exec.validator()->stats().divergences, 0u);

  // Corrupt device 1's replica of the read-only input. The dirty-bit
  // machinery can never notice ('a' is not written, so nothing propagates);
  // only the shadow execution sees that device 1 computes from stale data.
  ma.shard(1).data->Typed<std::int32_t>()[48] = 999;
  try {
    exec.RunOffload(offload, env, resolve);
    FAIL() << "expected the validator to flag the divergence";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("validate:"), std::string::npos) << what;
    EXPECT_NE(what.find("element 48"), std::string::npos) << what;
  }
  EXPECT_EQ(exec.validator()->stats().divergences, 1u);
}

TEST(ValidatorTest, TwoDDivergenceReportsRowAndColumn) {
  // Same stale-replica injection, but on a 2-D row-block array: the
  // divergence message must decode the flat element index into (row, col)
  // so a wrong-halo bug in a cols() kernel points at the offending row.
  // `a` stays replicated (no localaccess) exactly like the 1-D injection
  // test — corrupting one replica is invisible to the dirty-bit machinery —
  // while `b` is a distributed 2-D row-block array.
  constexpr char kSource[] = R"(
void f(int n, int m, int* a, int* b) {
  #pragma acc localaccess(b: cols(m))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < m; j++) {
      b[i * m + j] = a[i * m + j] * 2;
    }
  }
}
)";
  const AccProgram program = AccProgram::FromSource("f2d", kSource);
  const translator::CompiledFunction& fn = program.compiled().functions[0];
  ASSERT_EQ(fn.offloads.size(), 1u);

  auto platform = sim::MakeSupercomputerNode(3);
  constexpr int rows = 8;
  constexpr int cols = 8;
  constexpr int count = rows * cols;
  std::vector<std::int32_t> a(count), b(count, 0);
  std::iota(a.begin(), a.end(), 0);
  ManagedArray ma("a", ir::ValType::kI32, count, a.data(), 3);
  ManagedArray mb("b", ir::ValType::kI32, count, b.data(), 3);
  ma.SetShape(rows, cols);
  mb.SetShape(rows, cols);

  ExecOptions options;
  options.validate = true;
  Executor exec(*platform, options, {0, 1});
  translator::HostEnv env;
  for (const auto& param : fn.function->params) {
    if (!param->type.is_pointer) {
      env.SetScalar(*param, translator::TypedValue::OfInt(
                                param->name == "n" ? rows : cols));
    }
  }
  auto resolve = [&](const frontend::VarDecl& decl) -> ManagedArray& {
    return decl.name == "a" ? ma : mb;
  };

  exec.RunOffload(fn.offloads[0], env, resolve);
  EXPECT_EQ(exec.validator()->stats().divergences, 0u);

  // Element 42 lives in device 1's row block (rows 4..7): row 5, col 2.
  ma.shard(1).data->Typed<std::int32_t>()[42] = 999;
  try {
    exec.RunOffload(fn.offloads[0], env, resolve);
    FAIL() << "expected the validator to flag the divergence";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("element 42 (row 5, col 2)"), std::string::npos)
        << what;
  }
  EXPECT_EQ(exec.validator()->stats().divergences, 1u);
}

// ---------------------------------------------------------------------------
// All applications, divergence-free under validation
// ---------------------------------------------------------------------------

class ValidatedAppsTest : public ::testing::TestWithParam<int> {};

TEST_P(ValidatedAppsTest, MdRunsClean) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(4);
  ExecOptions options;
  options.validate = true;
  const apps::MdInput input = apps::MakeMdInput(256, 8);
  const std::vector<float> expected = apps::MdReference(input);
  std::vector<float> force;
  const RunReport report =
      apps::RunMdAcc(input, *platform, gpus, &force, options);
  EXPECT_GT(report.validator.kernels_checked, 0u);
  EXPECT_EQ(report.validator.divergences, 0u);
  ASSERT_EQ(force.size(), expected.size());
  for (std::size_t i = 0; i < force.size(); ++i) {
    ASSERT_EQ(force[i], expected[i]) << "component " << i;
  }
}

TEST_P(ValidatedAppsTest, KmeansRunsClean) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(4);
  ExecOptions options;
  options.validate = true;
  const apps::KmeansInput input = apps::MakeKmeansInput(600, 4, 3, 5);
  const apps::KmeansResult expected = apps::KmeansReference(input);
  apps::KmeansResult result;
  const RunReport report =
      apps::RunKmeansAcc(input, *platform, gpus, &result, options);
  EXPECT_GT(report.validator.kernels_checked, 0u);
  EXPECT_EQ(report.validator.divergences, 0u);
  EXPECT_EQ(result.membership, expected.membership);
  for (std::size_t i = 0; i < result.centroids.size(); ++i) {
    EXPECT_NEAR(result.centroids[i], expected.centroids[i],
                2e-3 * (1.0 + std::fabs(expected.centroids[i])))
        << "centroid component " << i;
  }
}

TEST_P(ValidatedAppsTest, BfsRunsClean) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(4);
  ExecOptions options;
  options.validate = true;
  const apps::BfsInput input = apps::MakeBfsInput(500, 4);
  const std::vector<std::int32_t> expected = apps::BfsReference(input);
  std::vector<std::int32_t> cost;
  const RunReport report =
      apps::RunBfsAcc(input, *platform, gpus, &cost, options);
  EXPECT_GT(report.validator.kernels_checked, 0u);
  EXPECT_EQ(report.validator.divergences, 0u);
  EXPECT_EQ(cost, expected);
}

TEST_P(ValidatedAppsTest, SpmvRunsClean) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(4);
  ExecOptions options;
  options.validate = true;
  const apps::SpmvInput input = apps::MakeSpmvInput(400, 6);
  const std::vector<float> expected = apps::SpmvReference(input);
  std::vector<float> y;
  const RunReport report =
      apps::RunSpmvAcc(input, *platform, gpus, &y, options);
  EXPECT_GT(report.validator.kernels_checked, 0u);
  EXPECT_EQ(report.validator.divergences, 0u);
  ASSERT_EQ(y.size(), expected.size());
  for (std::size_t r = 0; r < y.size(); ++r) {
    ASSERT_EQ(y[r], expected[r]) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, ValidatedAppsTest,
                         ::testing::Values(2, 4));

}  // namespace
}  // namespace accmg::runtime
