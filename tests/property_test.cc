// Property-based tests: randomized programs and workloads exercised across
// every backend and GPU count, checked against native references.
//
// Invariants covered (DESIGN.md Section 5):
//  * translator correctness: random affine element-wise programs produce the
//    host-evaluated result on any GPU count and on the CPU baseline;
//  * write-miss replay: random scatter destinations converge to the serial
//    result regardless of placement policy;
//  * reductions: random (index, value) streams fold to the serial result;
//  * halo exchange: random stencil windows match single-GPU execution;
//  * coherence: replicas are byte-identical after communication.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg {
namespace {

using runtime::AccProgram;
using runtime::ProgramRunner;
using runtime::RunConfig;

// ---------------------------------------------------------------------------
// Random element-wise programs
// ---------------------------------------------------------------------------

/// Generates a random arithmetic expression over `i`, the scalar `s`, and
/// i-indexed reads of input arrays a/b. Division is avoided entirely so any
/// input is safe; all arithmetic is int32.
std::string RandomIntExpr(Rng& rng, int depth) {
  if (depth == 0) {
    switch (rng.NextBounded(5)) {
      case 0: return "i";
      case 1: return "s";
      case 2: return "a[i]";
      case 3: return "b[i]";
      default: return std::to_string(rng.NextInt(-9, 9));
    }
  }
  const std::string lhs = RandomIntExpr(rng, depth - 1);
  const std::string rhs = RandomIntExpr(rng, depth - 1);
  switch (rng.NextBounded(6)) {
    case 0: return "(" + lhs + " + " + rhs + ")";
    case 1: return "(" + lhs + " - " + rhs + ")";
    case 2: return "(" + lhs + " * " + rhs + ")";
    case 3: return "(" + lhs + " < " + rhs + " ? " + lhs + " : " + rhs + ")";
    case 4: return "min(" + lhs + ", " + rhs + ")";
    default: return "(" + lhs + " ^ " + rhs + ")";
  }
}

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, AllBackendsMatchHostEvaluation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const std::string expr = RandomIntExpr(rng, 3);
  const std::string source = R"(
void f(int n, int s, int* a, int* b, int* out) {
  #pragma acc data copyin(a[0:n], b[0:n]) copyout(out[0:n])
  {
    #pragma acc localaccess(a: stride(1)) (b: stride(1)) (out: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      out[i] = )" + expr + R"(;
    }
  }
}
)";
  const AccProgram program = AccProgram::FromSource("rand", source);

  constexpr int n = 777;  // deliberately not divisible by 2 or 3
  std::vector<std::int32_t> a(n), b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<std::int32_t>(rng.NextInt(-100, 100));
    b[i] = static_cast<std::int32_t>(rng.NextInt(-100, 100));
  }
  const std::int64_t s = rng.NextInt(-5, 5);

  std::vector<std::int32_t> reference;
  for (const auto& [gpus, cpu] :
       {std::pair{1, true}, std::pair{1, false}, std::pair{2, false},
        std::pair{3, false}}) {
    auto platform = sim::MakeSupercomputerNode(3);
    std::vector<std::int32_t> out(n, -1);
    ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                            .num_gpus = gpus,
                                            .use_cpu = cpu});
    runner.BindArray("a", a.data(), ir::ValType::kI32, n);
    runner.BindArray("b", b.data(), ir::ValType::kI32, n);
    runner.BindArray("out", out.data(), ir::ValType::kI32, n);
    runner.BindScalar("n", static_cast<std::int64_t>(n));
    runner.BindScalar("s", s);
    runner.Run("f");
    if (reference.empty()) {
      reference = out;
    } else {
      ASSERT_EQ(out, reference)
          << "backend gpus=" << gpus << " cpu=" << cpu << "\nexpr: " << expr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Random scatter: replica+dirty-bits vs distributed+miss-replay
// ---------------------------------------------------------------------------

class RandomScatterTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomScatterTest, BothPoliciesConvergeToSerialResult) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  constexpr int n = 2000;
  std::vector<std::int32_t> perm(n), src(n);
  for (int i = 0; i < n; ++i) {
    perm[i] = static_cast<std::int32_t>(rng.NextBounded(n));
    src[i] = static_cast<std::int32_t>(rng.NextInt(0, 1 << 20));
  }
  // Make perm a bijection so overlapping writes cannot race: shuffle the
  // identity permutation (Fisher-Yates).
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(
        rng.NextBounded(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[i], perm[j]);
  }

  std::vector<std::int32_t> reference(n);
  for (int i = 0; i < n; ++i) reference[perm[i]] = src[i] * 7 - 3;

  const std::string with_localaccess = R"(
void f(int n, int* perm, int* src, int* dst) {
  #pragma acc data copyin(perm[0:n], src[0:n]) copyout(dst[0:n])
  {
    #pragma acc localaccess(perm: stride(1)) (src: stride(1)) (dst: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      dst[perm[i]] = src[i] * 7 - 3;
    }
  }
}
)";
  const std::string without_localaccess = R"(
void f(int n, int* perm, int* src, int* dst) {
  #pragma acc data copyin(perm[0:n], src[0:n]) copy(dst[0:n])
  {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      dst[perm[i]] = src[i] * 7 - 3;
    }
  }
}
)";
  for (const std::string& source : {with_localaccess, without_localaccess}) {
    const AccProgram program = AccProgram::FromSource("scatter", source);
    for (int gpus : {1, 2, 3}) {
      auto platform = sim::MakeSupercomputerNode(3);
      std::vector<std::int32_t> dst(n, 0);
      ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                              .num_gpus = gpus});
      runner.BindArray("perm", perm.data(), ir::ValType::kI32, n);
      runner.BindArray("src", src.data(), ir::ValType::kI32, n);
      runner.BindArray("dst", dst.data(), ir::ValType::kI32, n);
      runner.BindScalar("n", static_cast<std::int64_t>(n));
      runner.Run("f");
      ASSERT_EQ(dst, reference) << "gpus=" << gpus;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScatterTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Random reductions
// ---------------------------------------------------------------------------

struct ReductionCase {
  int seed;
  const char* op;  // "+", "min", "max"
};

class RandomReductionTest
    : public ::testing::TestWithParam<ReductionCase> {};

TEST_P(RandomReductionTest, MatchesSerialFold) {
  const auto& [seed, op] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31337 + 11);
  constexpr int n = 3000, k = 13;
  std::vector<std::int32_t> keys(n), vals(n);
  for (int i = 0; i < n; ++i) {
    keys[i] = static_cast<std::int32_t>(rng.NextBounded(k));
    vals[i] = static_cast<std::int32_t>(rng.NextInt(-1000, 1000));
  }
  const std::string op_str = op;
  std::vector<std::int32_t> initial(k);
  for (int c = 0; c < k; ++c) {
    initial[c] = static_cast<std::int32_t>(rng.NextInt(-50, 50));
  }
  std::vector<std::int32_t> reference = initial;
  for (int i = 0; i < n; ++i) {
    auto& cell = reference[static_cast<std::size_t>(keys[i])];
    if (op_str == "+") cell += vals[i];
    if (op_str == "min") cell = std::min(cell, vals[i]);
    if (op_str == "max") cell = std::max(cell, vals[i]);
  }

  std::string statement;
  if (op_str == "+") {
    statement = "acc[c] += vals[i];";
  } else if (op_str == "min") {
    statement = "acc[c] = min(acc[c], vals[i]);";
  } else {
    statement = "acc[c] = max(acc[c], vals[i]);";
  }
  const std::string source = R"(
void f(int n, int k, int* keys, int* vals, int* acc) {
  #pragma acc data copyin(keys[0:n], vals[0:n]) copy(acc[0:k])
  {
    #pragma acc localaccess(keys: stride(1)) (vals: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      int c = keys[i];
      #pragma acc reductiontoarray()" + op_str + R"(: acc[0:k])
      )" + statement + R"(
    }
  }
}
)";
  const AccProgram program = AccProgram::FromSource("red", source);
  for (int gpus : {1, 2, 3}) {
    auto platform = sim::MakeSupercomputerNode(3);
    std::vector<std::int32_t> acc = initial;
    ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                            .num_gpus = gpus});
    runner.BindArray("keys", keys.data(), ir::ValType::kI32, n);
    runner.BindArray("vals", vals.data(), ir::ValType::kI32, n);
    runner.BindArray("acc", acc.data(), ir::ValType::kI32, k);
    runner.BindScalar("n", static_cast<std::int64_t>(n));
    runner.BindScalar("k", static_cast<std::int64_t>(k));
    runner.Run("f");
    ASSERT_EQ(acc, reference) << "op=" << op_str << " gpus=" << gpus;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RandomReductionTest,
    ::testing::Values(ReductionCase{0, "+"}, ReductionCase{1, "+"},
                      ReductionCase{2, "+"}, ReductionCase{0, "min"},
                      ReductionCase{1, "min"}, ReductionCase{0, "max"},
                      ReductionCase{1, "max"}));

// ---------------------------------------------------------------------------
// Random stencil windows (halo exchange)
// ---------------------------------------------------------------------------

class RandomStencilTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomStencilTest, HaloExchangeMatchesSingleGpu) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 5);
  const int left = static_cast<int>(rng.NextBounded(4));
  const int right = static_cast<int>(rng.NextBounded(4));
  const int steps = 2 + static_cast<int>(rng.NextBounded(3));
  constexpr int n = 1531;

  std::ostringstream source;
  source << R"(
void f(int n, int steps, long acc_l, long acc_r, double* u, double* v) {
  #pragma acc data copy(u[0:n]) create(v[0:n])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: stride(1), left()"
         << left << "), right(" << right << R"()) (v: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        double total = 0.0;
        for (int d = -)" << left << "; d <= " << right << R"(; d++) {
          int j = i + d;
          if (j < 0) { j = 0; }
          if (j >= n) { j = n - 1; }
          total += u[j];
        }
        v[i] = total * 0.25;
      }
      #pragma acc localaccess(u: stride(1)) (v: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        u[i] = v[i];
      }
    }
  }
}
)";
  const AccProgram program = AccProgram::FromSource("stencil", source.str());

  std::vector<double> reference;
  for (int gpus : {1, 2, 3}) {
    auto platform = sim::MakeSupercomputerNode(3);
    std::vector<double> u(n), v(n, 0.0);
    Rng init(99);
    for (int i = 0; i < n; ++i) u[i] = init.NextDouble(-1, 1);
    ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                            .num_gpus = gpus});
    runner.BindArray("u", u.data(), ir::ValType::kF64, n);
    runner.BindArray("v", v.data(), ir::ValType::kF64, n);
    runner.BindScalar("n", static_cast<std::int64_t>(n));
    runner.BindScalar("steps", static_cast<std::int64_t>(steps));
    runner.BindScalar("acc_l", static_cast<std::int64_t>(0));
    runner.BindScalar("acc_r", static_cast<std::int64_t>(0));
    runner.Run("f");
    if (reference.empty()) {
      reference = u;
    } else {
      ASSERT_EQ(u, reference)
          << "gpus=" << gpus << " left=" << left << " right=" << right;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStencilTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Coherence invariant: replicas byte-identical after communication
// ---------------------------------------------------------------------------

TEST(CoherenceTest, ReplicasIdenticalAfterEveryKernel) {
  constexpr char kSource[] = R"(
void f(int n, int iters, int* perm, int* data) {
  #pragma acc data copyin(perm[0:n]) copy(data[0:n])
  {
    for (int t = 0; t < iters; t++) {
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        data[perm[i]] = data[perm[i]] + 0 * t + i;
      }
    }
  }
}
)";
  // Bijective perm -> no write races; replicated data exercises repeated
  // dirty propagation. After the run, the copied-back host data must match
  // a serial execution.
  constexpr int n = 4096, iters = 3;
  std::vector<std::int32_t> perm(n), data(n, 1), reference(n, 1);
  Rng rng(4242);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(
        rng.NextBounded(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[i], perm[j]);
  }
  for (int t = 0; t < iters; ++t) {
    std::vector<std::int32_t> next = reference;
    for (int i = 0; i < n; ++i) {
      next[perm[i]] = reference[perm[i]] + i;
    }
    reference = next;
  }

  const AccProgram program = AccProgram::FromSource("coherence", kSource);
  auto platform = sim::MakeSupercomputerNode(3);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 3});
  runner.BindArray("perm", perm.data(), ir::ValType::kI32, n);
  runner.BindArray("data", data.data(), ir::ValType::kI32, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.BindScalar("iters", static_cast<std::int64_t>(iters));
  runner.Run("f");
  EXPECT_EQ(data, reference);
}

}  // namespace
}  // namespace accmg
