// Randomized differential tests for the optimized coherence hot paths.
//
// Each test builds two identical virtual machines, applies the same random
// write pattern to both, then runs the optimized path (word-level dirty
// scanning + span coalescing + thread-pool fan-out, sorted miss replay,
// pairwise-tree reduction) on one and the straightforward reference
// implementation (src/runtime/comm_reference.h) on the other. The optimized
// paths must be pure wall-clock improvements: bit-identical final array
// contents AND identical billed bytes, transfer counts, and simulated time.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "runtime/comm_manager.h"
#include "runtime/comm_reference.h"
#include "runtime/data_loader.h"
#include "runtime/managed_array.h"
#include "runtime/program.h"
#include "runtime/reduction.h"
#include "sim/platform.h"

namespace accmg::runtime {
namespace {

/// One side of a differential run: its own platform (so billing and the sim
/// clock accumulate independently), host storage, and managed array.
struct Side {
  std::unique_ptr<sim::Platform> platform;
  ExecOptions options;
  std::vector<int> devices;
  std::vector<std::byte> host;
  std::unique_ptr<ManagedArray> array;
  std::unique_ptr<DataLoader> loader;

  Side(int gpus, ir::ValType type, std::int64_t count,
       std::size_t chunk_bytes) {
    platform = sim::MakeDesktopMachine(gpus);
    for (int d = 0; d < gpus; ++d) devices.push_back(d);
    options.dirty_chunk_bytes = chunk_bytes;
    host.resize(static_cast<std::size_t>(count) * ir::ValTypeSize(type));
    array = std::make_unique<ManagedArray>("a", type, count, host.data(),
                                           gpus);
    loader = std::make_unique<DataLoader>(*platform, options, devices);
  }

  void LoadReplicated(bool dirty_tracked) {
    ArrayRequirement req;
    req.array = array.get();
    req.written = true;
    req.dirty_tracked = dirty_tracked;
    req.read_ranges.assign(devices.size(), Range{0, array->count()});
    req.own_ranges.assign(devices.size(), Range{0, array->count()});
    loader->EnsurePlacement(req);
    platform->ResetAccounting();
  }

  void LoadDistributed(bool miss_checked) {
    ArrayRequirement req;
    req.array = array.get();
    req.written = true;
    req.miss_checked = miss_checked;
    req.distributed = true;
    const std::int64_t n = array->count();
    const auto gpus = static_cast<std::int64_t>(devices.size());
    for (std::int64_t g = 0; g < gpus; ++g) {
      const Range own{n * g / gpus, n * (g + 1) / gpus};
      req.read_ranges.push_back(own);
      req.own_ranges.push_back(own);
    }
    loader->EnsurePlacement(req);
    platform->ResetAccounting();
  }
};

/// Marks `index` written with `raw` on `device`, as the instrumented kernel
/// would: data bytes + both dirty-bit levels.
void WriteDirty(Side& side, int device, std::int64_t index,
                std::uint64_t raw) {
  DeviceShard& shard = side.array->shard(device);
  const std::size_t elem = side.array->elem_size();
  std::memcpy(shard.data->bytes().data() +
                  static_cast<std::size_t>(index) * elem,
              &raw, elem);
  shard.dirty1->bytes()[static_cast<std::size_t>(index)] = std::byte{1};
  shard.dirty2->bytes()[static_cast<std::size_t>(index / shard.chunk_elems)] =
      std::byte{1};
}

/// Identical random dirty pattern on both sides (`seed` drives everything):
/// per-device random writes at `density`, plus a deliberately overlapping
/// stretch every device writes so last-writer-wins ordering is exercised.
void PaintDirtyPattern(Side& side, std::uint64_t seed, double density) {
  Rng rng(seed);
  const std::int64_t n = side.array->count();
  for (int device : side.devices) {
    for (std::int64_t i = 0; i < n; ++i) {
      const bool dirty = rng.NextDouble() < density;
      const std::uint64_t value = rng.NextU64();
      if (dirty) WriteDirty(side, device, i, value);
    }
  }
  // Overlap: every device writes [0, min(8, n)) with a device-tagged value.
  for (int device : side.devices) {
    for (std::int64_t i = 0; i < std::min<std::int64_t>(8, n); ++i) {
      WriteDirty(side, device, i,
                 seed ^ (static_cast<std::uint64_t>(device) << 32) ^
                     static_cast<std::uint64_t>(i));
    }
  }
}

/// Identical random miss records on both sides, including duplicate writes
/// to the same index (the later record must win on replay).
void FillMissRecords(Side& side, std::uint64_t seed, int records_per_gpu) {
  Rng rng(seed);
  const std::int64_t n = side.array->count();
  for (int device : side.devices) {
    DeviceShard& shard = side.array->shard(device);
    std::int64_t previous = 0;
    for (int k = 0; k < records_per_gpu; ++k) {
      // Every 4th record duplicates the previous index with a new value.
      const std::int64_t index =
          (k % 4 == 3) ? previous : rng.NextInt(0, n - 1);
      previous = index;
      shard.miss.records.push_back(
          ir::WriteMissRecord{index, rng.NextU64()});
    }
  }
}

void ExpectSidesIdentical(Side& optimized, Side& ref) {
  // Bit-identical device contents, dirty state, and miss buffers.
  for (int device : optimized.devices) {
    const DeviceShard& a = optimized.array->shard(device);
    const DeviceShard& b = ref.array->shard(device);
    ASSERT_EQ(a.data->size_bytes(), b.data->size_bytes());
    EXPECT_EQ(std::memcmp(a.data->bytes().data(), b.data->bytes().data(),
                          a.data->size_bytes()),
              0)
        << "device " << device << " contents diverge";
    if (a.dirty1 != nullptr) {
      EXPECT_EQ(std::memcmp(a.dirty1->bytes().data(),
                            b.dirty1->bytes().data(), a.dirty1->size_bytes()),
                0);
      EXPECT_EQ(std::memcmp(a.dirty2->bytes().data(),
                            b.dirty2->bytes().data(), a.dirty2->size_bytes()),
                0);
    }
    EXPECT_EQ(a.miss.records.size(), b.miss.records.size());
  }
  // Identical billed transfers and bytes.
  const sim::PlatformCounters& ca = optimized.platform->counters();
  const sim::PlatformCounters& cb = ref.platform->counters();
  EXPECT_EQ(ca.h2d_transfers, cb.h2d_transfers);
  EXPECT_EQ(ca.d2h_transfers, cb.d2h_transfers);
  EXPECT_EQ(ca.p2p_transfers, cb.p2p_transfers);
  EXPECT_EQ(ca.h2d_bytes, cb.h2d_bytes);
  EXPECT_EQ(ca.d2h_bytes, cb.d2h_bytes);
  EXPECT_EQ(ca.p2p_bytes, cb.p2p_bytes);
  // Identical simulated time, category by category (exact — the billing
  // sequences must match, not just approximately agree).
  optimized.platform->Barrier(sim::TimeCategory::kGpuGpu);
  ref.platform->Barrier(sim::TimeCategory::kGpuGpu);
  const auto& ta = optimized.platform->clock().breakdown();
  const auto& tb = ref.platform->clock().breakdown();
  for (int c = 0; c < sim::kNumTimeCategories; ++c) {
    EXPECT_EQ(ta.seconds[c], tb.seconds[c])
        << "sim time diverges in category " << c;
  }
}

TEST(CommEquivalence, DirtyMergeMatchesReference) {
  Rng meta(0xD117B175);
  for (int trial = 0; trial < 12; ++trial) {
    const int gpus = 2 + trial % 3;
    const auto n = meta.NextInt(200, 5000);
    const double density = meta.NextDouble() * meta.NextDouble();  // skew low
    const std::size_t chunk_bytes = std::size_t{64}
                                    << meta.NextInt(0, 4);  // 64..1024 B
    const ir::ValType type =
        trial % 2 == 0 ? ir::ValType::kI32 : ir::ValType::kF64;
    const std::uint64_t seed = meta.NextU64();
    SCOPED_TRACE("trial " + std::to_string(trial) + " gpus=" +
                 std::to_string(gpus) + " n=" + std::to_string(n));

    Side optimized(gpus, type, n, chunk_bytes);
    Side ref(gpus, type, n, chunk_bytes);
    optimized.LoadReplicated(/*dirty_tracked=*/true);
    ref.LoadReplicated(/*dirty_tracked=*/true);
    PaintDirtyPattern(optimized, seed, density);
    PaintDirtyPattern(ref, seed, density);

    CommManager comm(*optimized.platform, optimized.options,
                     optimized.devices);
    comm.PropagateReplicated(*optimized.array);
    reference::PropagateReplicated(*ref.platform, ref.devices, *ref.array);
    ExpectSidesIdentical(optimized, ref);
  }
}

TEST(CommEquivalence, DirtyMergeEdgePatterns) {
  // Full density, single dirty elements straddling chunk boundaries, runs
  // crossing chunk boundaries, and a completely clean array.
  const std::int64_t n = 1000;
  const std::size_t chunk_bytes = 64;  // 16 i32 elements per chunk
  for (int pattern = 0; pattern < 4; ++pattern) {
    SCOPED_TRACE("pattern " + std::to_string(pattern));
    Side optimized(3, ir::ValType::kI32, n, chunk_bytes);
    Side ref(3, ir::ValType::kI32, n, chunk_bytes);
    optimized.LoadReplicated(true);
    ref.LoadReplicated(true);

    auto paint = [&](Side& side) {
      const std::int64_t chunk = side.array->shard(0).chunk_elems;
      switch (pattern) {
        case 0:  // everything dirty on every device
          for (int d : side.devices) {
            for (std::int64_t i = 0; i < n; ++i) {
              WriteDirty(side, d, i, 0x1111 * (d + 1) + i);
            }
          }
          break;
        case 1:  // lone elements at chunk boundaries
          WriteDirty(side, 0, chunk - 1, 7);
          WriteDirty(side, 1, chunk, 8);
          WriteDirty(side, 2, 2 * chunk - 1, 9);
          break;
        case 2:  // one run crossing a chunk boundary
          for (std::int64_t i = chunk - 3; i < chunk + 3; ++i) {
            WriteDirty(side, 1, i, 100 + i);
          }
          break;
        case 3:  // nothing dirty
          break;
      }
    };
    paint(optimized);
    paint(ref);

    CommManager comm(*optimized.platform, optimized.options,
                     optimized.devices);
    comm.PropagateReplicated(*optimized.array);
    reference::PropagateReplicated(*ref.platform, ref.devices, *ref.array);
    ExpectSidesIdentical(optimized, ref);
  }
}

TEST(CommEquivalence, MissReplayMatchesReference) {
  Rng meta(0x3155F1A5);
  for (int trial = 0; trial < 10; ++trial) {
    const int gpus = 2 + trial % 3;
    const auto n = meta.NextInt(100, 3000);
    const int records = static_cast<int>(meta.NextInt(1, 400));
    const ir::ValType type =
        trial % 2 == 0 ? ir::ValType::kI64 : ir::ValType::kF32;
    const std::uint64_t seed = meta.NextU64();
    SCOPED_TRACE("trial " + std::to_string(trial) + " gpus=" +
                 std::to_string(gpus) + " records=" + std::to_string(records));

    Side optimized(gpus, type, n, 1 << 20);
    Side ref(gpus, type, n, 1 << 20);
    optimized.LoadDistributed(/*miss_checked=*/true);
    ref.LoadDistributed(/*miss_checked=*/true);
    FillMissRecords(optimized, seed, records);
    FillMissRecords(ref, seed, records);

    CommManager comm(*optimized.platform, optimized.options,
                     optimized.devices);
    comm.ReplayWriteMisses(*optimized.array);
    reference::ReplayWriteMisses(*ref.platform, ref.devices, *ref.array);
    ExpectSidesIdentical(optimized, ref);
  }
}

TEST(CommEquivalence, TreeReductionMatchesReference) {
  struct Case {
    ir::RedOp op;
    ir::ValType type;
  };
  const Case cases[] = {
      {ir::RedOp::kAdd, ir::ValType::kI64},
      {ir::RedOp::kAdd, ir::ValType::kF64},  // FP: tree order must match
      {ir::RedOp::kMax, ir::ValType::kI32},
      {ir::RedOp::kMin, ir::ValType::kF32},
      {ir::RedOp::kMul, ir::ValType::kF64},
  };
  Rng meta(0x4ED0C710);
  for (const Case& c : cases) {
    for (int gpus = 1; gpus <= 4; ++gpus) {
      SCOPED_TRACE(std::string("op=") + ir::RedOpName(c.op) + " gpus=" +
                   std::to_string(gpus));
      const auto n = meta.NextInt(50, 2000);
      const std::int64_t lower = meta.NextInt(0, n / 4);
      const std::int64_t length = meta.NextInt(1, n - lower);
      const std::uint64_t seed = meta.NextU64();

      Side optimized(gpus, c.type, n, 1 << 20);
      Side ref(gpus, c.type, n, 1 << 20);
      optimized.LoadReplicated(/*dirty_tracked=*/false);
      ref.LoadReplicated(/*dirty_tracked=*/false);

      // Identical random partials for both sides. For f32 the raw value
      // must be a valid 32-bit pattern in the low bytes.
      auto make_partials = [&] {
        Rng rng(seed);
        std::vector<std::vector<std::uint64_t>> partials(
            static_cast<std::size_t>(gpus));
        for (auto& p : partials) {
          p.resize(static_cast<std::size_t>(length));
          for (auto& v : p) {
            switch (c.type) {
              case ir::ValType::kI32:
                v = static_cast<std::uint32_t>(rng.NextU64());
                break;
              case ir::ValType::kI64:
                v = rng.NextU64();
                break;
              case ir::ValType::kF32: {
                const float f =
                    static_cast<float>(rng.NextDouble(-100.0, 100.0));
                std::uint32_t bits;
                std::memcpy(&bits, &f, sizeof(bits));
                v = bits;
                break;
              }
              case ir::ValType::kF64: {
                const double d = rng.NextDouble(-100.0, 100.0);
                std::memcpy(&v, &d, sizeof(v));
                break;
              }
            }
          }
        }
        return partials;
      };
      const auto partials_a = make_partials();
      const auto partials_b = make_partials();
      auto views = [](const std::vector<std::vector<std::uint64_t>>& p) {
        std::vector<const std::vector<std::uint64_t>*> v;
        for (const auto& partial : p) v.push_back(&partial);
        return v;
      };

      CombineArrayReduction(*optimized.platform, optimized.devices,
                            *optimized.array, c.op, c.type, lower, length,
                            views(partials_a));
      reference::CombineArrayReduction(*ref.platform, ref.devices,
                                       *ref.array, c.op, c.type, lower,
                                       length, views(partials_b));
      ExpectSidesIdentical(optimized, ref);
    }
  }
}

// ---------------------------------------------------------------------------
// Async-pipeline scheduling knobs (ready_at / Stream::kAsync)
// ---------------------------------------------------------------------------

/// Two writers dirty overlapping spans; propagation resolves the overlap
/// last-writer-wins in device order. Differential under the async pipeline's
/// scheduling knobs: a deferred start time and the second DMA engine must
/// not change the functional result, the billed traffic, or the
/// optimized-vs-reference agreement.
TEST(CommEquivalence, RacingWritersOverlappingSpansUnderAsyncKnobs) {
  Rng meta(0x0E21A77E);
  for (int trial = 0; trial < 8; ++trial) {
    const int gpus = 2 + trial % 3;
    const auto n = meta.NextInt(300, 3000);
    const std::size_t chunk_bytes = std::size_t{64} << meta.NextInt(0, 3);
    const std::uint64_t seed = meta.NextU64();
    const double ready_at = trial % 2 == 0 ? 0.0 : 1.5e-3;
    const sim::Stream stream =
        trial % 2 == 0 ? sim::Stream::kDefault : sim::Stream::kAsync;
    SCOPED_TRACE("trial " + std::to_string(trial) + " gpus=" +
                 std::to_string(gpus) + " n=" + std::to_string(n));

    Side optimized(gpus, ir::ValType::kI64, n, chunk_bytes);
    Side ref(gpus, ir::ValType::kI64, n, chunk_bytes);
    optimized.LoadReplicated(/*dirty_tracked=*/true);
    ref.LoadReplicated(/*dirty_tracked=*/true);

    // Every device writes a span; consecutive devices overlap halfway, so
    // each overlapped element has two racing writers.
    auto paint = [&](Side& side) {
      Rng rng(seed);
      const std::int64_t span = n / (gpus + 1);
      for (int d = 0; d < gpus; ++d) {
        const std::int64_t lo = d * span / 2;
        for (std::int64_t i = lo; i < lo + span; ++i) {
          WriteDirty(side, d,
                     i, rng.NextU64() ^ (static_cast<std::uint64_t>(d) << 56));
        }
      }
    };
    paint(optimized);
    paint(ref);

    CommManager comm(*optimized.platform, optimized.options,
                     optimized.devices);
    comm.PropagateReplicated(*optimized.array, ready_at, stream);
    reference::PropagateReplicated(*ref.platform, ref.devices, *ref.array,
                                   ready_at, stream);
    ExpectSidesIdentical(optimized, ref);
  }
}

/// PropagateReplicated snapshots the senders' dirty state when it is
/// CALLED (task-issue time), not when the deferred transfers drain. Writes
/// landing after the call — while the billed transfers are still "on the
/// wire" at ready_at — must not ride along, and must still be dirty for
/// the next propagation.
TEST(CommEquivalence, PropagationSnapshotTakenAtIssueTime) {
  const std::int64_t n = 512;
  Side optimized(2, ir::ValType::kI64, n, 256);
  Side ref(2, ir::ValType::kI64, n, 256);
  optimized.LoadReplicated(/*dirty_tracked=*/true);
  ref.LoadReplicated(/*dirty_tracked=*/true);

  auto run = [&](Side& side, bool reference_impl) {
    // First writer: device 0 dirties [0, 64).
    for (std::int64_t i = 0; i < 64; ++i) {
      WriteDirty(side, 0, i, 0xA000 + static_cast<std::uint64_t>(i));
    }
    // Issue the propagation far in the future on the async engine.
    const double deferred = 2.0e-3;
    CommManager comm(*side.platform, side.options, side.devices);
    if (reference_impl) {
      reference::PropagateReplicated(*side.platform, side.devices,
                                     *side.array, deferred,
                                     sim::Stream::kAsync);
    } else {
      comm.PropagateReplicated(*side.array, deferred, sim::Stream::kAsync);
    }
    // Second writer races in after the issue: overlapping span [32, 96).
    for (std::int64_t i = 32; i < 96; ++i) {
      WriteDirty(side, 1, i, 0xB000 + static_cast<std::uint64_t>(i));
    }
    // The issued propagation already snapshotted: device 1's late writes
    // must still be marked dirty, and device 0 must not yet see them.
    const DeviceShard& d0 = side.array->shard(0);
    for (std::int64_t i = 64; i < 96; ++i) {
      std::uint64_t value = 0;
      std::memcpy(&value,
                  d0.data->bytes().data() + static_cast<std::size_t>(i) * 8,
                  8);
      EXPECT_NE(value, 0xB000 + static_cast<std::uint64_t>(i))
          << "late write leaked into the issued propagation at " << i;
    }
    // Second propagation drains the late writes.
    if (reference_impl) {
      reference::PropagateReplicated(*side.platform, side.devices,
                                     *side.array, deferred,
                                     sim::Stream::kAsync);
    } else {
      comm.PropagateReplicated(*side.array, deferred, sim::Stream::kAsync);
    }
  };
  run(optimized, false);
  run(ref, true);

  // Both devices now agree: [0, 32) from writer A, [32, 96) from writer B
  // (last writer wins on the overlap).
  for (int device : optimized.devices) {
    const DeviceShard& shard = optimized.array->shard(device);
    for (std::int64_t i = 0; i < 96; ++i) {
      std::uint64_t value = 0;
      std::memcpy(&value,
                  shard.data->bytes().data() +
                      static_cast<std::size_t>(i) * 8,
                  8);
      const std::uint64_t want =
          i < 32 ? 0xA000 + static_cast<std::uint64_t>(i)
                 : 0xB000 + static_cast<std::uint64_t>(i);
      EXPECT_EQ(value, want) << "device " << device << " element " << i;
    }
  }
  ExpectSidesIdentical(optimized, ref);
}

// ---------------------------------------------------------------------------
// Optimizing mid-end: fused vs unfused whole-program differential sweep
// ---------------------------------------------------------------------------

/// Emits a random sequence of adjacent parallel loops over three shared
/// arrays. Three statement shapes: same-thread element-wise maps (fusion
/// candidates), two-source combines (also same-thread), and clamped
/// shifted reads through a local (non-affine, so fusion must bail). The
/// mix makes some adjacent pairs legal to fuse and others not.
std::string MakeRandomLoopNest(Rng& rng, int loops) {
  const char* arrays[] = {"a", "b", "c"};
  std::string body;
  for (int l = 0; l < loops; ++l) {
    const auto dst_idx = rng.NextInt(0, 2);
    auto src_idx = rng.NextInt(0, 2);
    const std::string dst = arrays[dst_idx];
    const std::string k = std::to_string(rng.NextInt(1, 3));
    const std::string add = std::to_string(rng.NextInt(0, 9));
    body += "  #pragma acc parallel loop\n"
            "  for (int i = 0; i < n; i++) {\n";
    switch (rng.NextInt(0, 2)) {
      case 0:
        body += "    " + dst + "[i] = " + arrays[src_idx] + "[i] * " + k +
                " + " + add + ";\n";
        break;
      case 1:
        body += "    " + dst + "[i] = a[i] + b[i] + " + add + ";\n";
        break;
      default:
        // Reading through the clamped local defeats the affine summary;
        // keep the source distinct from the destination so the loop stays
        // race-free on its own.
        if (src_idx == dst_idx) src_idx = (dst_idx + 1) % 3;
        body += "    int r = i + 1;\n"
                "    if (r >= n) { r = n - 1; }\n"
                "    " + dst + "[i] = " + arrays[src_idx] + "[r] + " + add +
                ";\n";
        break;
    }
    body += "  }\n";
  }
  return "void f(int n, int* a, int* b, int* c) {\n"
         "  #pragma acc data copy(a[0:n], b[0:n], c[0:n])\n  {\n" +
         body + "  }\n}\n";
}

struct SweepRun {
  std::vector<std::int32_t> a, b, c;
  RunReport report;
  std::size_t offloads = 0;
};

SweepRun RunSweep(const std::string& source, int opt_level, int gpus,
                  std::int64_t n, std::uint64_t seed) {
  translator::CompileOptions copts;
  copts.opt_level = opt_level;
  const AccProgram program = AccProgram::FromSource("f", source, copts);
  SweepRun out;
  for (const auto& fn : program.compiled().functions) {
    out.offloads += fn.offloads.size();
  }
  Rng rng(seed);
  auto fill = [&](std::vector<std::int32_t>& v) {
    v.resize(static_cast<std::size_t>(n));
    for (auto& x : v) x = static_cast<std::int32_t>(rng.NextInt(0, 99));
  };
  fill(out.a);
  fill(out.b);
  fill(out.c);
  auto platform = sim::MakeDesktopMachine(gpus);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = gpus});
  runner.BindArray("a", out.a.data(), ir::ValType::kI32, n);
  runner.BindArray("b", out.b.data(), ir::ValType::kI32, n);
  runner.BindArray("c", out.c.data(), ir::ValType::kI32, n);
  runner.BindScalar("n", n);
  out.report = runner.Run("f");
  return out;
}

/// Random loop nests, each compiled at opt levels 0/1/2 and run on the same
/// inputs: results must be bit-identical, and the optimized levels must
/// never bill more offload rounds, GPU-GPU transfers, or GPU-GPU bytes
/// than the unfused baseline.
TEST(CommEquivalence, FusedVsUnfusedDifferentialSweep) {
  Rng meta(0xF05EDD1F);
  int fused_at_least_once = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const int gpus = 1 + static_cast<int>(trial % 3);
    const int loops = static_cast<int>(meta.NextInt(3, 5));
    const std::int64_t n = meta.NextInt(200, 4000);
    const std::uint64_t seed = meta.NextU64();
    const std::string source = MakeRandomLoopNest(meta, loops);
    SCOPED_TRACE("trial " + std::to_string(trial) + " gpus=" +
                 std::to_string(gpus) + " loops=" + std::to_string(loops) +
                 "\n" + source);

    const SweepRun base = RunSweep(source, 0, gpus, n, seed);
    ASSERT_EQ(base.offloads, static_cast<std::size_t>(loops));
    for (const int level : {1, 2}) {
      const SweepRun opt = RunSweep(source, level, gpus, n, seed);
      EXPECT_EQ(opt.a, base.a) << "opt level " << level;
      EXPECT_EQ(opt.b, base.b) << "opt level " << level;
      EXPECT_EQ(opt.c, base.c) << "opt level " << level;
      EXPECT_LE(opt.offloads, base.offloads);
      EXPECT_LE(opt.report.kernel_executions, base.report.kernel_executions);
      EXPECT_LE(opt.report.counters.p2p_transfers,
                base.report.counters.p2p_transfers);
      EXPECT_LE(opt.report.counters.p2p_bytes,
                base.report.counters.p2p_bytes);
      if (opt.offloads < base.offloads) ++fused_at_least_once;
    }
  }
  // The sweep is only interesting if fusion actually fires somewhere.
  EXPECT_GT(fused_at_least_once, 0);
}

}  // namespace
}  // namespace accmg::runtime
