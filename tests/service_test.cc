// Tests for the resident service layer (src/service/): program-cache key
// correctness and LRU behaviour, admission/fairness/batching of the job
// queue, device-arena leasing, per-job billing exactness on a shared
// platform, and per-job trace export.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <list>
#include <random>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/md/md.h"
#include "common/trace.h"
#include "service/arena.h"
#include "service/builtin_apps.h"
#include "service/cache.h"
#include "service/protocol.h"
#include "service/queue.h"
#include "service/service.h"
#include "sim/platform.h"

namespace accmg::service {
namespace {

// A minimal valid program; `salt` varies the text (and thus the key)
// without changing semantics.
std::string TinySource(const std::string& salt = "") {
  std::string source =
      "void f(int n, float* a) {\n"
      "  #pragma acc data copy(a[0:n])\n"
      "  {\n"
      "    #pragma acc localaccess(a: stride(1))\n"
      "    #pragma acc parallel loop\n"
      "    for (int i = 0; i < n; i++) {\n"
      "      a[i] = a[i] + 1.0f;\n"
      "    }\n"
      "  }\n"
      "}\n";
  if (!salt.empty()) source += "// " + salt + "\n";
  return source;
}

// ---------------------------------------------------------------- cache --

TEST(ProgramCacheTest, ByteIdenticalResubmitHits) {
  ProgramCache cache(8);
  bool hit = true;
  auto first = cache.GetOrCompile("f", TinySource(), {}, &hit);
  EXPECT_FALSE(hit);
  auto second = cache.GetOrCompile("f", TinySource(), {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // same compiled object
  EXPECT_EQ(cache.compiles(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ProgramCacheTest, DifferentCompileOptionsMiss) {
  ProgramCache cache(8);
  translator::CompileOptions checked;
  translator::CompileOptions unchecked;
  unchecked.check_directives = false;
  EXPECT_NE(ProgramCache::KeyFor(TinySource(), checked),
            ProgramCache::KeyFor(TinySource(), unchecked));
  cache.GetOrCompile("f", TinySource(), checked);
  bool hit = true;
  cache.GetOrCompile("f", TinySource(), unchecked, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.compiles(), 2u);
}

TEST(ProgramCacheTest, WhitespaceChangeIsADifferentKey) {
  // Keys are content hashes, not normalized text: any byte difference —
  // even trailing whitespace — is a different program to the cache.
  const std::string source = TinySource();
  EXPECT_NE(ProgramCache::KeyFor(source, {}),
            ProgramCache::KeyFor(source + " ", {}));
  EXPECT_NE(ProgramCache::KeyFor(source, {}),
            ProgramCache::KeyFor("\n" + source, {}));
  EXPECT_EQ(ProgramCache::KeyFor(source, {}),
            ProgramCache::KeyFor(TinySource(), {}));
}

TEST(ProgramCacheTest, NameIsNotPartOfTheKey) {
  ProgramCache cache(8);
  cache.GetOrCompile("alpha", TinySource(), {});
  bool hit = false;
  cache.GetOrCompile("beta", TinySource(), {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.compiles(), 1u);
}

TEST(ProgramCacheTest, EvictionKeepsLruInvariants) {
  // Single shard so the model below tracks the exact global LRU order.
  constexpr std::size_t kCapacity = 6;
  ProgramCache cache(kCapacity, /*shards=*/1);

  std::mt19937 rng(12345);
  std::list<std::string> model;  // front = most recently used
  const int kDistinct = 14;
  std::vector<std::string> salts;
  for (int i = 0; i < kDistinct; ++i) {
    salts.push_back("salt-" + std::to_string(i));
  }

  for (int step = 0; step < 120; ++step) {
    const std::string& salt =
        salts[rng() % static_cast<std::size_t>(kDistinct)];
    const bool expect_hit =
        std::find(model.begin(), model.end(), salt) != model.end();
    bool hit = false;
    cache.GetOrCompile("f", TinySource(salt), {}, &hit);
    ASSERT_EQ(hit, expect_hit) << "step " << step << " salt " << salt;

    model.remove(salt);
    model.push_front(salt);
    if (model.size() > kCapacity) model.pop_back();  // LRU eviction
    ASSERT_LE(cache.size(), kCapacity);
    ASSERT_EQ(cache.size(), model.size());
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.misses(), cache.compiles());
}

// ---------------------------------------------------------------- queue --

QueuedJob MakeQueued(int id, const std::string& tenant,
                     const std::string& key) {
  QueuedJob job;
  job.id = id;
  job.program_key = key;
  job.request.tenant = tenant;
  return job;
}

TEST(JobQueueTest, AdmissionRejectsWhenFull) {
  JobQueue queue(2);
  EXPECT_TRUE(queue.Push(MakeQueued(0, "a", "k0")));
  EXPECT_TRUE(queue.Push(MakeQueued(1, "a", "k1")));
  EXPECT_FALSE(queue.Push(MakeQueued(2, "a", "k2")));
  EXPECT_EQ(queue.rejects(), 1u);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(JobQueueTest, TenantsServedRoundRobin) {
  JobQueue queue(16);
  // Tenant "a" floods first; "b" submits one job afterwards.
  queue.Push(MakeQueued(0, "a", "k0"));
  queue.Push(MakeQueued(1, "a", "k1"));
  queue.Push(MakeQueued(2, "a", "k2"));
  queue.Push(MakeQueued(3, "b", "k3"));

  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    const std::vector<QueuedJob> batch = queue.PopBatch(1);
    ASSERT_EQ(batch.size(), 1u);
    order.push_back(batch[0].id);
  }
  // b's job jumps ahead of a's backlog: a, b, a, a.
  EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 2}));
}

TEST(JobQueueTest, BatchesSameProgramAcrossTenants) {
  JobQueue queue(16);
  queue.Push(MakeQueued(0, "a", "shared"));
  queue.Push(MakeQueued(1, "a", "other"));
  queue.Push(MakeQueued(2, "b", "shared"));
  queue.Push(MakeQueued(3, "c", "shared"));

  std::vector<QueuedJob> batch = queue.PopBatch(8);
  ASSERT_EQ(batch.size(), 3u);
  for (const QueuedJob& job : batch) EXPECT_EQ(job.program_key, "shared");
  EXPECT_EQ(batch[0].id, 0);  // the fair pick leads the batch

  batch = queue.PopBatch(8);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 1);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(JobQueueTest, MaxBatchCapsTheBatch) {
  JobQueue queue(16);
  for (int i = 0; i < 5; ++i) queue.Push(MakeQueued(i, "a", "k"));
  EXPECT_EQ(queue.PopBatch(2).size(), 2u);
  EXPECT_EQ(queue.PopBatch(8).size(), 3u);
}

TEST(JobQueueTest, StopDrainsThenReturnsEmpty) {
  JobQueue queue(4);
  queue.Push(MakeQueued(0, "a", "k"));
  queue.Stop();
  EXPECT_FALSE(queue.Push(MakeQueued(1, "a", "k")));
  EXPECT_EQ(queue.PopBatch(8).size(), 1u);  // queued work still drains
  EXPECT_TRUE(queue.PopBatch(8).empty());   // then empty, without blocking
}

// ---------------------------------------------------------------- arena --

TEST(DeviceArenaTest, LeasesAreDisjoint) {
  DeviceArena arena(4);
  DeviceArena::Lease first = arena.Acquire(2);
  DeviceArena::Lease second = arena.Acquire(2);
  std::set<int> devices(first.devices().begin(), first.devices().end());
  devices.insert(second.devices().begin(), second.devices().end());
  EXPECT_EQ(devices.size(), 4u);  // no overlap
  EXPECT_EQ(arena.free_count(), 0);
  first.Release();
  EXPECT_EQ(arena.free_count(), 2);
}

TEST(DeviceArenaTest, AcquireBlocksUntilRelease) {
  DeviceArena arena(2);
  DeviceArena::Lease held = arena.Acquire(2);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    DeviceArena::Lease lease = arena.Acquire(1);
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  held.Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(arena.free_count(), 2);
}

TEST(DeviceArenaTest, TicketsGrantInFifoOrder) {
  DeviceArena arena(2);
  DeviceArena::Lease held = arena.Acquire(2);

  std::vector<int> grant_order;
  std::mutex order_mutex;
  std::atomic<int> started{0};
  auto contender = [&](int id, int count) {
    ++started;
    DeviceArena::Lease lease = arena.Acquire(count);
    std::lock_guard<std::mutex> lock(order_mutex);
    grant_order.push_back(id);
  };
  // A 2-device job arrives first; a later 1-device job must NOT jump it
  // even though one device would free up first (strict FIFO).
  std::thread big(contender, 1, 2);
  while (started.load() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::thread small(contender, 2, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  held.Release();
  big.join();
  small.join();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], 1);
  EXPECT_EQ(grant_order[1], 2);
}

// -------------------------------------------------------------- service --

TEST(AccServiceTest, ConcurrentJobsBillExactlyLikeSequentialRuns) {
  // The satellite requirement: two jobs running concurrently on a shared
  // platform must bill exactly what the same jobs bill when run alone.
  const apps::MdInput input = apps::MakeMdInput(512, 12);
  sim::PlatformCounters baseline;
  {
    auto alone = sim::MakeSupercomputerNode(4);
    std::vector<float> force;
    baseline = apps::RunMdAcc(input, *alone, 2, &force).counters;
  }

  auto platform = sim::MakeSupercomputerNode(4);
  AccService::Config config;
  config.platform = platform.get();
  config.workers = 2;
  AccService service(config);

  AppJobOptions options;
  options.app = "md";
  options.gpus = 2;
  const int first = service.Submit(MakeAppJob(options));
  const int second = service.Submit(MakeAppJob(options));
  ASSERT_GE(first, 0);
  ASSERT_GE(second, 0);

  for (const int id : {first, second}) {
    const JobResult result = service.Wait(id);
    ASSERT_EQ(result.state, JobState::kDone) << result.error;
    EXPECT_EQ(result.report.counters, baseline) << "job " << id;
    EXPECT_EQ(result.devices.size(), 2u);
  }
  // Billed sums across both jobs equal twice the sequential baseline.
  sim::PlatformCounters sum;
  sum += service.Wait(first).report.counters;
  sum += service.Wait(second).report.counters;
  sim::PlatformCounters twice;
  twice += baseline;
  twice += baseline;
  EXPECT_EQ(sum, twice);
}

TEST(AccServiceTest, ValidatedAppsPassOnSharedPlatform) {
  auto platform = sim::MakeSupercomputerNode(4);
  AccService::Config config;
  config.platform = platform.get();
  config.workers = 2;
  AccService service(config);

  std::vector<std::shared_ptr<AppJobOutcome>> outcomes;
  std::vector<int> ids;
  for (const char* app : {"md", "kmeans", "bfs", "spmv"}) {
    AppJobOptions options;
    options.app = app;
    options.gpus = 2;
    options.validate_result = true;
    auto outcome = std::make_shared<AppJobOutcome>();
    ids.push_back(service.Submit(MakeAppJob(options, outcome)));
    outcomes.push_back(std::move(outcome));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobResult result = service.Wait(ids[i]);
    ASSERT_EQ(result.state, JobState::kDone) << result.error;
    EXPECT_TRUE(outcomes[i]->checked);
    EXPECT_TRUE(outcomes[i]->ok) << outcomes[i]->detail;
  }
}

TEST(AccServiceTest, CompileErrorFailsTheJobNotTheService) {
  auto platform = sim::MakeSupercomputerNode(2);
  AccService::Config config;
  config.platform = platform.get();
  config.workers = 1;
  AccService service(config);

  JobRequest bad;
  bad.name = "broken";
  bad.function = "f";
  bad.source = "void f(int n, float* a) { this is not a program";
  const int bad_id = service.Submit(std::move(bad));
  const JobResult bad_result = service.Wait(bad_id);
  EXPECT_EQ(bad_result.state, JobState::kFailed);
  EXPECT_FALSE(bad_result.error.empty());

  // The service keeps serving after a failed job.
  AppJobOptions options;
  options.app = "spmv";
  const JobResult good = service.Wait(service.Submit(MakeAppJob(options)));
  EXPECT_EQ(good.state, JobState::kDone) << good.error;
}

TEST(AccServiceTest, WarmResubmitCompilesZeroTimes) {
  auto platform = sim::MakeSupercomputerNode(2);
  AccService::Config config;
  config.platform = platform.get();
  config.workers = 1;
  AccService service(config);

  AppJobOptions options;
  options.app = "bfs";
  const JobResult cold = service.Wait(service.Submit(MakeAppJob(options)));
  ASSERT_EQ(cold.state, JobState::kDone) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  const std::uint64_t compiles_after_cold = service.cache().compiles();

  for (int i = 0; i < 3; ++i) {
    const JobResult warm = service.Wait(service.Submit(MakeAppJob(options)));
    ASSERT_EQ(warm.state, JobState::kDone) << warm.error;
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.program_key, cold.program_key);
  }
  EXPECT_EQ(service.cache().compiles(), compiles_after_cold);
}

// ---------------------------------------------------------------- trace --

TEST(JobScopeTest, TagsEventsAndFiltersExport) {
  trace::Tracer& tracer = trace::Tracer::Global();
  tracer.Clear();
  tracer.set_enabled(true);
  {
    trace::JobScope job7(7);
    trace::Event event;
    event.name = "seven";
    event.category = "test";
    tracer.Record(std::move(event));
  }
  {
    trace::JobScope job8(8);
    trace::Event event;
    event.name = "eight";
    event.category = "test";
    tracer.Record(std::move(event));
  }
  trace::Event untagged;
  untagged.name = "none";
  untagged.category = "test";
  tracer.Record(std::move(untagged));
  tracer.set_enabled(false);

  std::ostringstream job7_json;
  tracer.WriteChromeTrace(job7_json, /*job_filter=*/7);
  EXPECT_NE(job7_json.str().find("seven"), std::string::npos);
  EXPECT_EQ(job7_json.str().find("eight"), std::string::npos);
  EXPECT_EQ(job7_json.str().find("\"none\""), std::string::npos);

  std::ostringstream all_json;
  tracer.WriteChromeTrace(all_json);
  EXPECT_NE(all_json.str().find("seven"), std::string::npos);
  EXPECT_NE(all_json.str().find("eight"), std::string::npos);
  tracer.Clear();
}

// ------------------------------------------------------------- protocol --

TEST(ProtocolTest, ParsesTheGrammar) {
  Request submit = ParseRequest("submit app=md gpus=2 tenant=t1");
  EXPECT_EQ(submit.kind, Request::Kind::kSubmit);
  EXPECT_EQ(submit.params.at("app"), "md");
  EXPECT_EQ(submit.params.at("gpus"), "2");
  EXPECT_EQ(submit.params.at("tenant"), "t1");

  Request status = ParseRequest("  status 12  ");
  EXPECT_EQ(status.kind, Request::Kind::kStatus);
  EXPECT_EQ(status.job_id, 12);

  EXPECT_EQ(ParseRequest("result 3").kind, Request::Kind::kResult);
  EXPECT_EQ(ParseRequest("metrics").kind, Request::Kind::kMetrics);
  EXPECT_EQ(ParseRequest("quit").kind, Request::Kind::kQuit);

  EXPECT_EQ(ParseRequest("").kind, Request::Kind::kInvalid);
  EXPECT_TRUE(ParseRequest("").error.empty());  // silently skippable
  EXPECT_EQ(ParseRequest("# comment").kind, Request::Kind::kInvalid);
  EXPECT_FALSE(ParseRequest("status nope").error.empty());
  EXPECT_FALSE(ParseRequest("submit app").error.empty());
  EXPECT_FALSE(ParseRequest("frobnicate").error.empty());
}

}  // namespace
}  // namespace accmg::service
