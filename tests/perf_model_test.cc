// Performance-model regression tests: pin the *orderings* the paper's
// evaluation establishes so cost-model changes cannot silently break the
// reproduced shapes. Absolute simulated times are never asserted — only
// relations between configurations.
#include <gtest/gtest.h>

#include "apps/bfs/bfs.h"
#include "apps/kmeans/kmeans.h"
#include "apps/md/md.h"
#include "sim/platform.h"

namespace accmg {
namespace {

double MdTime(sim::Platform& platform, int gpus, bool cpu = false) {
  const apps::MdInput input = apps::MakeMdInput(8192, 32);
  std::vector<float> force;
  if (cpu) return apps::RunMdOpenMp(input, platform, &force).total_seconds;
  return apps::RunMdAcc(input, platform, gpus, &force).total_seconds;
}

double KmeansTime(sim::Platform& platform, int gpus, bool cpu = false) {
  const apps::KmeansInput input = apps::MakeKmeansInput(20000, 16, 5, 8);
  apps::KmeansResult result;
  if (cpu) {
    return apps::RunKmeansOpenMp(input, platform, &result).total_seconds;
  }
  return apps::RunKmeansAcc(input, platform, gpus, &result).total_seconds;
}

runtime::RunReport BfsReport(sim::Platform& platform, int gpus) {
  const apps::BfsInput input = apps::MakeBfsInput(60000, 48);
  std::vector<std::int32_t> cost;
  return apps::RunBfsAcc(input, platform, gpus, &cost);
}

TEST(PerfModelTest, GpuBeatsOpenMpOnDesktopComputeApps) {
  auto p1 = sim::MakeDesktopMachine(2);
  const double omp = MdTime(*p1, 1, /*cpu=*/true);
  auto p2 = sim::MakeDesktopMachine(2);
  const double gpu = MdTime(*p2, 1);
  EXPECT_LT(gpu, omp);

  auto p3 = sim::MakeDesktopMachine(2);
  const double omp_k = KmeansTime(*p3, 1, /*cpu=*/true);
  auto p4 = sim::MakeDesktopMachine(2);
  const double gpu_k = KmeansTime(*p4, 1);
  EXPECT_LT(gpu_k, omp_k);
}

TEST(PerfModelTest, SecondGpuHelpsMdAndKmeans) {
  auto p1 = sim::MakeDesktopMachine(2);
  const double one = MdTime(*p1, 1);
  auto p2 = sim::MakeDesktopMachine(2);
  const double two = MdTime(*p2, 2);
  EXPECT_LT(two, one);

  auto p3 = sim::MakeDesktopMachine(2);
  const double one_k = KmeansTime(*p3, 1);
  auto p4 = sim::MakeDesktopMachine(2);
  const double two_k = KmeansTime(*p4, 2);
  EXPECT_LT(two_k, one_k);
  // Kmeans is kernel-dominated: the second GPU should cut a large share.
  EXPECT_LT(two_k, one_k * 0.75);
}

TEST(PerfModelTest, SpeedupIsSubLinearBecauseOfCpuGpuTransfers) {
  // Paper Fig. 8: CPU-GPU transfer prevents linear scaling.
  auto p1 = sim::MakeDesktopMachine(2);
  const double one = MdTime(*p1, 1);
  auto p2 = sim::MakeDesktopMachine(2);
  const double two = MdTime(*p2, 2);
  EXPECT_GT(two, one / 2);
}

TEST(PerfModelTest, DesktopSpeedupsExceedNodeSpeedups) {
  // The weaker desktop CPU makes its GPU bars taller (6.75x vs 2.95x peaks).
  auto d1 = sim::MakeDesktopMachine(2);
  auto d2 = sim::MakeDesktopMachine(2);
  const double desktop =
      KmeansTime(*d1, 1, true) / KmeansTime(*d2, 2);
  auto n1 = sim::MakeSupercomputerNode(3);
  auto n2 = sim::MakeSupercomputerNode(3);
  const double node = KmeansTime(*n1, 1, true) / KmeansTime(*n2, 2);
  EXPECT_GT(desktop, node);
}

TEST(PerfModelTest, BfsGpuGpuShareGrowsWithGpuCount) {
  auto p2 = sim::MakeSupercomputerNode(3);
  const auto two = BfsReport(*p2, 2);
  auto p3 = sim::MakeSupercomputerNode(3);
  const auto three = BfsReport(*p3, 3);
  const double share2 =
      two.time[sim::TimeCategory::kGpuGpu] / two.total_seconds;
  const double share3 =
      three.time[sim::TimeCategory::kGpuGpu] / three.total_seconds;
  EXPECT_GT(share3, share2);
  EXPECT_GT(share3, 0.10);  // communication-dominated regime
}

TEST(PerfModelTest, MdHasZeroGpuGpuTime) {
  auto platform = sim::MakeSupercomputerNode(3);
  const apps::MdInput input = apps::MakeMdInput(4096, 16);
  std::vector<float> force;
  const auto report = apps::RunMdAcc(input, *platform, 3, &force);
  EXPECT_EQ(report.time[sim::TimeCategory::kGpuGpu], 0.0);
  EXPECT_EQ(report.counters.p2p_bytes, 0u);
}

TEST(PerfModelTest, CrossIohTransfersSlowerThanIntraIoh) {
  auto platform = sim::MakeSupercomputerNode(3);
  auto b0 = platform->device(0).Allocate("b0", 1 << 22);
  auto b1 = platform->device(1).Allocate("b1", 1 << 22);
  auto b2 = platform->device(2).Allocate("b2", 1 << 22);
  platform->CopyDeviceToDevice(*b1, 0, *b0, 0, 1 << 22);  // same IOH
  const double intra = platform->Barrier(sim::TimeCategory::kGpuGpu);
  platform->CopyDeviceToDevice(*b2, 0, *b0, 0, 1 << 22);  // across QPI
  const double cross = platform->Barrier(sim::TimeCategory::kGpuGpu);
  EXPECT_GT(cross, intra * 1.3);
}

TEST(PerfModelTest, ReloadCacheSavesUploadsOnIterativeApps) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::KmeansInput input = apps::MakeKmeansInput(20000, 16, 5, 8);
  apps::KmeansResult result;
  const auto report = apps::RunKmeansAcc(input, *platform, 2, &result);
  // The feature matrix uploads once; 8 iterations x 2 kernels would
  // otherwise reload it 16 times.
  EXPECT_GT(report.loader.loads_skipped, 8u);
  const double upload_bytes =
      static_cast<double>(report.counters.h2d_bytes);
  EXPECT_LT(upload_bytes,
            3.0 * static_cast<double>(input.features.size()) * 4);
}

}  // namespace
}  // namespace accmg
