// Tests for the inter-offload dependence graph and the async pipeline's
// boundary/interior splitter (src/runtime/depgraph.h): edge derivation from
// translator read/write sets (RAW/WAR/WAW, reduction destinations
// serialize, decl-keyed matching under shadowing), split-plan correctness
// against localaccess windows and affine write summaries, and a randomized
// async-vs-sync schedule-equivalence property test (identical results and
// identical billed transfer counters).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "runtime/depgraph.h"
#include "runtime/program.h"
#include "sim/platform.h"
#include "translator/offload.h"

namespace accmg::runtime {
namespace {

struct Compiled {
  std::unique_ptr<frontend::Program> ast;
  translator::CompiledProgram program;
};

Compiled CompileSource(const std::string& source) {
  Compiled out;
  frontend::SourceBuffer buffer("test.c", source);
  out.ast = frontend::ParseAndAnalyze(buffer);
  // The tests below assert edges between individual source loops; keep the
  // optimizing mid-end off so fusion cannot merge the offloads first.
  translator::CompileOptions options;
  options.opt_level = 0;
  out.program = translator::Compile(*out.ast, options);
  return out;
}

const frontend::VarDecl* DeclOf(const translator::CompiledFunction& fn,
                                const std::string& name) {
  for (const auto& offload : fn.offloads) {
    for (const auto& config : offload.arrays) {
      if (config.name == name) return config.decl;
    }
  }
  return nullptr;
}

bool HasEdgeOfKind(const DepGraph& graph, int from, int to,
                   const frontend::VarDecl* decl, DepKind kind) {
  for (const DepEdge& edge : graph.edges) {
    if (edge.from == from && edge.to == to && edge.decl == decl &&
        edge.kind == kind) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Edge derivation
// ---------------------------------------------------------------------------

TEST(DepGraphTest, DerivesRawWarEdgesFromReadWriteSets) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a, float* b, float* c) {
  #pragma acc data copy(a[0:n], b[0:n], c[0:n])
  {
    #pragma acc localaccess(a: stride(1)) (b: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0; }
    #pragma acc localaccess(b: stride(1)) (c: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) { c[i] = b[i] + 1.0; }
    #pragma acc localaccess(a: stride(1)) (c: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) { a[i] = c[i]; }
  }
})");
  const translator::CompiledFunction& fn = compiled.program.functions.at(0);
  ASSERT_EQ(fn.offloads.size(), 3u);
  const DepGraph graph = BuildDepGraph(fn);
  EXPECT_EQ(graph.num_offloads, 3);

  const frontend::VarDecl* a = DeclOf(fn, "a");
  const frontend::VarDecl* b = DeclOf(fn, "b");
  const frontend::VarDecl* c = DeclOf(fn, "c");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);

  // L0 writes b, L1 reads b: true dependence.
  EXPECT_TRUE(HasEdgeOfKind(graph, 0, 1, b, DepKind::kRAW));
  // L0 reads a, L2 writes a: anti dependence — and NOT a RAW on a.
  EXPECT_TRUE(HasEdgeOfKind(graph, 0, 2, a, DepKind::kWAR));
  EXPECT_FALSE(HasEdgeOfKind(graph, 0, 2, a, DepKind::kRAW));
  // L1 writes c, L2 reads c.
  EXPECT_TRUE(HasEdgeOfKind(graph, 1, 2, c, DepKind::kRAW));
  // No edge backwards, and none between L0/L1 on c (disjoint uses).
  EXPECT_FALSE(graph.HasEdge(1, 0));
  EXPECT_FALSE(HasEdgeOfKind(graph, 0, 1, c, DepKind::kRAW));

  // Successors and the RAW-only read set the executor prioritizes.
  EXPECT_EQ(graph.Successors(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(graph.ReadsFrom(0, 1),
            (std::vector<const frontend::VarDecl*>{b}));
  // The 0 -> 2 edge is anti-only: nothing to prefetch.
  EXPECT_TRUE(graph.ReadsFrom(0, 2).empty());
}

TEST(DepGraphTest, ReductionDestinationsSerialize) {
  const Compiled compiled = CompileSource(R"(
void g(int n, int* x, int* h) {
  #pragma acc data copyin(x[0:n]) copy(h[0:4])
  {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      int c = x[i];
      #pragma acc reductiontoarray(+: h[0:4])
      h[c] += 1;
    }
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      int c = x[i];
      #pragma acc reductiontoarray(+: h[0:4])
      h[c] += 1;
    }
  }
})");
  const translator::CompiledFunction& fn = compiled.program.functions.at(0);
  ASSERT_EQ(fn.offloads.size(), 2u);
  const DepGraph graph = BuildDepGraph(fn);
  const frontend::VarDecl* h = DeclOf(fn, "h");
  ASSERT_NE(h, nullptr);

  // A reduction destination counts as read AND written (the combined
  // result folds into the pre-loop value), so consecutive reductions into
  // the same array carry all three dependence kinds.
  EXPECT_TRUE(HasEdgeOfKind(graph, 0, 1, h, DepKind::kRAW));
  EXPECT_TRUE(HasEdgeOfKind(graph, 0, 1, h, DepKind::kWAR));
  EXPECT_TRUE(HasEdgeOfKind(graph, 0, 1, h, DepKind::kWAW));
  EXPECT_EQ(graph.ReadsFrom(0, 1),
            (std::vector<const frontend::VarDecl*>{h}));
}

// ---------------------------------------------------------------------------
// Decl-keyed matching (shadowing)
// ---------------------------------------------------------------------------

TEST(DepGraphTest, FindArrayKeysOnDeclNotName) {
  frontend::VarDecl outer;
  outer.name = "a";
  outer.id = 1;
  frontend::VarDecl inner;
  inner.name = "a";  // same spelling, distinct declaration
  inner.id = 2;

  translator::LoopOffload offload;
  translator::ArrayConfig config;
  config.decl = &outer;
  config.name = outer.name;
  offload.arrays.push_back(config);

  EXPECT_EQ(offload.FindArray(outer), &offload.arrays[0]);
  // The shadowing decl shares the identifier but must NOT resolve.
  EXPECT_EQ(offload.FindArray(inner), nullptr);
  // Name-keyed lookup (directive-text resolution only) still matches.
  EXPECT_EQ(offload.FindArray(std::string("a")), &offload.arrays[0]);
}

TEST(DepGraphTest, NoEdgesBetweenShadowedDeclsWithSameName) {
  frontend::VarDecl outer;
  outer.name = "a";
  outer.id = 1;
  frontend::VarDecl inner;
  inner.name = "a";
  inner.id = 2;

  translator::CompiledFunction fn;
  translator::LoopOffload first;
  first.id = 0;
  translator::ArrayConfig writes_outer;
  writes_outer.decl = &outer;
  writes_outer.name = "a";
  writes_outer.is_written = true;
  first.arrays.push_back(writes_outer);
  fn.offloads.push_back(std::move(first));

  translator::LoopOffload second;
  second.id = 1;
  translator::ArrayConfig reads_inner;
  reads_inner.decl = &inner;
  reads_inner.name = "a";
  reads_inner.is_read = true;
  second.arrays.push_back(reads_inner);
  fn.offloads.push_back(std::move(second));

  // Name-keyed matching would fabricate a RAW edge between two unrelated
  // arrays; decl-keyed matching must not.
  const DepGraph graph = BuildDepGraph(fn);
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_FALSE(graph.HasEdge(0, 1));
}

// ---------------------------------------------------------------------------
// Boundary/interior split plans
// ---------------------------------------------------------------------------

ArraySplitInput HaloArray(std::int64_t stride, std::int64_t left,
                          std::int64_t right) {
  ArraySplitInput in;
  in.distributed = true;
  in.stride = stride;
  in.left = left;
  in.right = right;
  in.boundaries_exact = true;
  return in;
}

TEST(SplitPlanTest, JacobiWindowSplitsOneIterationEachSide) {
  // stride 1, one-element halos, read-only: the classic stencil source.
  const std::vector<ArraySplitInput> arrays{HaloArray(1, 1, 1)};
  const SplitPlan middle = ComputeBoundarySplit(arrays, 1, 3, 10);
  EXPECT_TRUE(middle.split);
  EXPECT_EQ(middle.lead, 1);
  EXPECT_EQ(middle.trail, 1);

  // Edge devices have no neighbour on one side.
  const SplitPlan first = ComputeBoundarySplit(arrays, 0, 3, 10);
  EXPECT_TRUE(first.split);
  EXPECT_EQ(first.lead, 0);
  EXPECT_EQ(first.trail, 1);
  const SplitPlan last = ComputeBoundarySplit(arrays, 2, 3, 10);
  EXPECT_TRUE(last.split);
  EXPECT_EQ(last.lead, 1);
  EXPECT_EQ(last.trail, 0);
}

TEST(SplitPlanTest, StrideTwoWindowRoundsUp) {
  // Each iteration covers 2 elements; a 3-element halo needs ceil(3/2) = 2
  // boundary iterations.
  const std::vector<ArraySplitInput> arrays{HaloArray(2, 3, 3)};
  const SplitPlan plan = ComputeBoundarySplit(arrays, 1, 4, 100);
  EXPECT_TRUE(plan.split);
  EXPECT_EQ(plan.lead, 2);
  EXPECT_EQ(plan.trail, 2);
}

TEST(SplitPlanTest, WritesIntoExchangeSensitiveSlicesWidenBoundary) {
  // In-place stencil: writes are affine with coeff == stride. Iterations
  // whose writes can land in the first `right` owned elements (the left
  // neighbour's halo source) or the last `left` ones must be boundary.
  ArraySplitInput in = HaloArray(1, 1, 1);
  in.is_written = true;
  in.has_affine_writes = true;
  in.write_coeff = 1;
  in.write_min_off = 0;
  in.write_max_off = 0;
  const SplitPlan plan = ComputeBoundarySplit({in}, 1, 3, 10);
  EXPECT_TRUE(plan.split);
  EXPECT_EQ(plan.lead, 1);
  EXPECT_EQ(plan.trail, 1);

  // A forward write offset reaches further into the trailing slice.
  in.write_max_off = 2;
  const SplitPlan wide = ComputeBoundarySplit({in}, 1, 3, 10);
  EXPECT_TRUE(wide.split);
  EXPECT_EQ(wide.trail, 3);  // (left + write_max_off) / stride
}

TEST(SplitPlanTest, ConservativeFallbacksDisableTheSplit) {
  const std::vector<ArraySplitInput> halo{HaloArray(1, 1, 1)};

  // Single device: nothing to exchange.
  EXPECT_FALSE(ComputeBoundarySplit(halo, 0, 1, 10).split);

  // Non-affine writes could land anywhere in the owned segment.
  ArraySplitInput unbounded = HaloArray(1, 1, 1);
  unbounded.is_written = true;
  unbounded.has_affine_writes = false;
  EXPECT_FALSE(ComputeBoundarySplit({unbounded}, 1, 3, 10).split);

  // Affine writes marching with a different coefficient than the
  // ownership stride break the iteration<->element correspondence.
  ArraySplitInput skewed = HaloArray(1, 1, 1);
  skewed.is_written = true;
  skewed.has_affine_writes = true;
  skewed.write_coeff = 2;
  EXPECT_FALSE(ComputeBoundarySplit({skewed}, 1, 3, 10).split);

  // Clamped ownership boundaries (small N) break the arithmetic too.
  ArraySplitInput clamped = HaloArray(1, 1, 1);
  clamped.boundaries_exact = false;
  EXPECT_FALSE(ComputeBoundarySplit({clamped}, 1, 3, 10).split);

  // Boundary windows that swallow the whole task leave no interior.
  EXPECT_FALSE(ComputeBoundarySplit(halo, 1, 3, 2).split);
  EXPECT_FALSE(ComputeBoundarySplit(halo, 1, 3, 0).split);

  // No halo'd distributed array at all: no exchange to hide.
  EXPECT_FALSE(ComputeBoundarySplit({HaloArray(1, 0, 0)}, 1, 3, 10).split);
  EXPECT_FALSE(ComputeBoundarySplit({}, 1, 3, 10).split);
}

TEST(SplitPlanTest, NoHaloDistributedArrayStillVetoesTheSplit) {
  // Regression: the no-halo early-out used to run BEFORE the conservative
  // vetoes, so a fused offload whose absorbed loop wrote a halo-free array
  // with clamped ownership boundaries (or unprovable write indices) still
  // split — and the async pre-exchange could overlap writes landing outside
  // the computed windows. Both vetoes must fire for every distributed
  // array, windowed or not.
  ArraySplitInput clamped = HaloArray(1, 0, 0);
  clamped.boundaries_exact = false;
  EXPECT_FALSE(
      ComputeBoundarySplit({HaloArray(1, 1, 1), clamped}, 1, 3, 10).split);

  ArraySplitInput unbounded = HaloArray(1, 0, 0);
  unbounded.is_written = true;
  unbounded.has_affine_writes = false;
  EXPECT_FALSE(
      ComputeBoundarySplit({HaloArray(1, 1, 1), unbounded}, 1, 3, 10).split);

  ArraySplitInput skewed = HaloArray(1, 0, 0);
  skewed.is_written = true;
  skewed.has_affine_writes = true;
  skewed.write_coeff = 2;
  EXPECT_FALSE(
      ComputeBoundarySplit({HaloArray(1, 1, 1), skewed}, 1, 3, 10).split);

  // A well-behaved no-halo rider must NOT veto — the vetoes are about
  // unprovable behaviour, not about the absence of a window.
  ArraySplitInput benign = HaloArray(1, 0, 0);
  benign.is_written = true;
  benign.has_affine_writes = true;
  benign.write_coeff = 1;
  EXPECT_TRUE(
      ComputeBoundarySplit({HaloArray(1, 1, 1), benign}, 1, 3, 10).split);
}

TEST(SplitPlanTest, WidestWindowAcrossArraysWins) {
  const std::vector<ArraySplitInput> arrays{HaloArray(1, 1, 1),
                                            HaloArray(1, 3, 2)};
  const SplitPlan plan = ComputeBoundarySplit(arrays, 1, 3, 100);
  EXPECT_TRUE(plan.split);
  EXPECT_EQ(plan.lead, 3);
  EXPECT_EQ(plan.trail, 2);
}

// ---------------------------------------------------------------------------
// Randomized async-vs-sync schedule equivalence
// ---------------------------------------------------------------------------

// Integer-only multi-loop program chaining a halo stencil (RAW u -> v), a
// copy-back (RAW v -> u, WAR on u), and a histogram reduction — the
// dependence shapes the pipeline reorders around. Integer arithmetic makes
// sync-vs-async comparison exact (no merge-order rounding).
constexpr char kChainSource[] = R"(
void f(int n, int steps, int* u, int* v, int* hist) {
  #pragma acc data copy(u[0:n], hist[0:4]) create(v[0:n])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: stride(1), left(1), right(1)) \
                  (v: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        int l = i - 1;
        int r = i + 1;
        if (l < 0) { l = 0; }
        if (r >= n) { r = n - 1; }
        v[i] = u[l] + u[i] + u[r];
      }
      #pragma acc localaccess(u: stride(1)) (v: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        u[i] = v[i] - v[i] / 7;
      }
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        int c = u[i] & 3;
        #pragma acc reductiontoarray(+: hist[0:4])
        hist[c] += 1;
      }
    }
  }
})";

struct ChainResult {
  std::vector<std::int32_t> u;
  std::vector<std::int32_t> hist;
  RunReport report;
};

ChainResult RunChain(int gpus, int n, int steps, std::uint64_t seed,
                     bool async) {
  auto platform = sim::MakeSupercomputerNode(4);
  ChainResult out;
  out.u.resize(static_cast<std::size_t>(n));
  out.hist.assign(4, 0);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n), 0);
  Rng rng(seed);
  for (auto& value : out.u) {
    value = static_cast<std::int32_t>(rng.NextInt(0, 1000));
  }
  const auto program = AccProgram::FromSource("f", kChainSource);
  RunConfig config{.platform = platform.get(), .num_gpus = gpus};
  config.options.async_pipeline = async;
  // The validator is the bit-identity oracle for the pipelined schedule.
  config.options.validate = async;
  ProgramRunner runner(program, config);
  runner.BindArray("u", out.u.data(), ir::ValType::kI32, n);
  runner.BindArray("v", v.data(), ir::ValType::kI32, n);
  runner.BindArray("hist", out.hist.data(), ir::ValType::kI32, 4);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.BindScalar("steps", static_cast<std::int64_t>(steps));
  out.report = runner.Run("f");
  return out;
}

TEST(AsyncScheduleEquivalence, RandomizedRunsMatchSynchronous) {
  Rng meta(0xA51C0DE5);
  for (int trial = 0; trial < 8; ++trial) {
    const int gpus = 1 << (trial % 3);  // 1, 2, 4
    // Includes n < gpus so empty device ranges ride through the pipeline.
    const int n = static_cast<int>(meta.NextInt(2, trial % 2 == 0 ? 9 : 400));
    const int steps = static_cast<int>(meta.NextInt(1, 3));
    const std::uint64_t seed = meta.NextU64();
    SCOPED_TRACE("trial " + std::to_string(trial) + " gpus=" +
                 std::to_string(gpus) + " n=" + std::to_string(n) +
                 " steps=" + std::to_string(steps));

    const ChainResult sync_run = RunChain(gpus, n, steps, seed, false);
    const ChainResult async_run = RunChain(gpus, n, steps, seed, true);

    // Bit-identical results, validator-clean pipelined schedule.
    EXPECT_EQ(async_run.u, sync_run.u);
    EXPECT_EQ(async_run.hist, sync_run.hist);
    EXPECT_EQ(async_run.report.validator.divergences, 0u);
    EXPECT_GT(async_run.report.validator.kernels_checked, 0u);

    // The pipeline reorders the simulated schedule but must bill exactly
    // the same traffic. (kernel_launches is excluded by design: the
    // boundary/interior split issues up to three sub-launches per device.)
    const sim::PlatformCounters& cs = sync_run.report.counters;
    const sim::PlatformCounters& ca = async_run.report.counters;
    EXPECT_EQ(ca.h2d_transfers, cs.h2d_transfers);
    EXPECT_EQ(ca.d2h_transfers, cs.d2h_transfers);
    EXPECT_EQ(ca.p2p_transfers, cs.p2p_transfers);
    EXPECT_EQ(ca.h2d_bytes, cs.h2d_bytes);
    EXPECT_EQ(ca.d2h_bytes, cs.d2h_bytes);
    EXPECT_EQ(ca.p2p_bytes, cs.p2p_bytes);

    // Timing: at tiny problem sizes the boundary/interior split pays extra
    // launch latency that can exceed the comm it overlaps, so async is not
    // universally faster. It must stay in the same ballpark, though — the
    // overlap win at realistic sizes is asserted by bench_async_overlap.
    EXPECT_LT(async_run.report.total_seconds,
              sync_run.report.total_seconds * 2.0);
  }
}

// ---------------------------------------------------------------------------
// Fused-stencil async differential (regression for the no-halo veto order)
// ---------------------------------------------------------------------------

// The first two loops fuse at opt-level 2 (same-thread RAW on s), producing
// one offload that mixes a halo'd read array (u) with no-halo written
// riders (s, q) — exactly the shape whose riders the splitter's
// conservative vetoes used to skip. The third loop cannot fuse (its write
// of u races the stencil's cross-thread reads) and keeps the dependence
// chain alive across sweeps.
constexpr char kFusedStencilSource[] = R"(
void h(int n, int steps, int* u, int* s, int* q) {
  #pragma acc data copy(u[0:n], q[0:n]) create(s[0:n])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: stride(1), left(1), right(1)) \
                  (s: stride(1)) (q: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        int l = i - 1;
        int r = i + 1;
        if (l < 0) { l = 0; }
        if (r >= n) { r = n - 1; }
        s[i] = u[l] + u[i] + u[r];
      }
      #pragma acc localaccess(s: stride(1)) (q: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        q[i] = q[i] + s[i] / 2;
      }
      #pragma acc localaccess(u: stride(1)) (q: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        u[i] = u[i] + q[i] / 4;
      }
    }
  }
})";

struct FusedResult {
  std::vector<std::int32_t> u;
  std::vector<std::int32_t> q;
  RunReport report;
};

FusedResult RunFusedStencil(const AccProgram& program, int gpus, int n,
                            int steps, bool async) {
  auto platform = sim::MakeSupercomputerNode(4);
  FusedResult out;
  out.u.resize(static_cast<std::size_t>(n));
  out.q.assign(static_cast<std::size_t>(n), 1);
  std::vector<std::int32_t> s(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    out.u[static_cast<std::size_t>(i)] = (i * 53 + 19) % 977;
  }
  RunConfig config{.platform = platform.get(), .num_gpus = gpus};
  config.options.async_pipeline = async;
  config.options.validate = async;
  ProgramRunner runner(program, config);
  runner.BindArray("u", out.u.data(), ir::ValType::kI32, n);
  runner.BindArray("s", s.data(), ir::ValType::kI32, n);
  runner.BindArray("q", out.q.data(), ir::ValType::kI32, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.BindScalar("steps", static_cast<std::int64_t>(steps));
  out.report = runner.Run("h");
  return out;
}

TEST(AsyncScheduleEquivalence, FusedStencilMatchesSynchronous) {
  translator::CompileOptions copts;
  copts.opt_level = 2;
  const auto program =
      AccProgram::FromSource("h", kFusedStencilSource, copts);
  int fusions = 0;
  for (const auto& offload : program.compiled().functions[0].offloads) {
    if (!offload.fused.empty()) {
      fusions += static_cast<int>(offload.fused.size()) - 1;
    }
  }
  EXPECT_GE(fusions, 1) << "the stencil+consumer pair no longer fuses — "
                           "this differential would not cover the fused "
                           "no-halo-rider shape";

  for (const int gpus : {1, 2, 4}) {
    SCOPED_TRACE("gpus=" + std::to_string(gpus));
    const FusedResult sync_run =
        RunFusedStencil(program, gpus, 201, 3, false);
    const FusedResult async_run =
        RunFusedStencil(program, gpus, 201, 3, true);
    EXPECT_EQ(async_run.u, sync_run.u);
    EXPECT_EQ(async_run.q, sync_run.q);
    EXPECT_EQ(async_run.report.validator.divergences, 0u);
    const sim::PlatformCounters& cs = sync_run.report.counters;
    const sim::PlatformCounters& ca = async_run.report.counters;
    EXPECT_EQ(ca.h2d_bytes, cs.h2d_bytes);
    EXPECT_EQ(ca.d2h_bytes, cs.d2h_bytes);
    EXPECT_EQ(ca.p2p_bytes, cs.p2p_bytes);
    EXPECT_EQ(ca.p2p_transfers, cs.p2p_transfers);
  }
}

}  // namespace
}  // namespace accmg::runtime
