// Tests of the unified tracing + metrics layer (common/trace.h,
// common/metrics.h): span recording and nesting, ring-buffer wraparound,
// Chrome-trace JSON well-formedness (checked with a minimal JSON parser),
// metrics registry correctness, concurrent recording through the thread
// pool, and the categories produced by an instrumented end-to-end run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON syntax validator: enough grammar to certify that the
// tracer's output parses as a single JSON value with no trailing garbage.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool String() {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<std::size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Members('{', '}', /*with_keys=*/true);
    if (c == '[') return Members('[', ']', /*with_keys=*/false);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Members(char open, char close, bool with_keys) {
    EXPECT_EQ(text_[pos_], open);
    ++pos_;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == close) {
      ++pos_;
      return true;
    }
    while (true) {
      if (with_keys) {
        SkipSpace();
        if (!String()) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
      }
      if (!Value()) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Every test drives the process-global tracer; reset it around each one.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tracer = trace::Tracer::Global();
    tracer.set_shard_capacity(1 << 14);
    tracer.set_enabled(true);
    tracer.Clear();
  }
  void TearDown() override {
    auto& tracer = trace::Tracer::Global();
    tracer.set_enabled(false);
    tracer.set_shard_capacity(1 << 14);
    tracer.Clear();
  }
};

trace::Event MakeEvent(const std::string& name, const std::string& category,
                       double start_us, double duration_us) {
  trace::Event event;
  event.name = name;
  event.category = category;
  event.timeline = trace::Timeline::kSim;
  event.device = 0;
  event.start_us = start_us;
  event.duration_us = duration_us;
  return event;
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  auto& tracer = trace::Tracer::Global();
  tracer.set_enabled(false);
  tracer.Record(MakeEvent("e", "kernel", 0, 1));
  { trace::Span span("wall", trace::category::kHost); }
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST_F(TraceTest, SpansNestAndBothAreRecorded) {
  auto& tracer = trace::Tracer::Global();
  {
    trace::Span outer("outer", trace::category::kOffload);
    {
      trace::Span inner("inner", trace::category::kLoader, /*device=*/1);
    }
  }
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto outer_it =
      std::find_if(events.begin(), events.end(),
                   [](const trace::Event& e) { return e.name == "outer"; });
  const auto inner_it =
      std::find_if(events.begin(), events.end(),
                   [](const trace::Event& e) { return e.name == "inner"; });
  ASSERT_NE(outer_it, events.end());
  ASSERT_NE(inner_it, events.end());
  EXPECT_EQ(outer_it->timeline, trace::Timeline::kWall);
  EXPECT_EQ(inner_it->device, 1);
  // The inner span lies within the outer one on the wall timeline.
  EXPECT_GE(inner_it->start_us, outer_it->start_us);
  EXPECT_LE(inner_it->start_us + inner_it->duration_us,
            outer_it->start_us + outer_it->duration_us + 1e-3);
  EXPECT_GE(outer_it->duration_us, inner_it->duration_us);
}

TEST_F(TraceTest, PhaseScopeNestsInnermostWins) {
  EXPECT_EQ(trace::PhaseScope::Current(), nullptr);
  {
    trace::PhaseScope outer(trace::category::kDirtyMerge);
    EXPECT_STREQ(trace::PhaseScope::Current(), "dirty-merge");
    {
      trace::PhaseScope inner(trace::category::kMissFlush);
      EXPECT_STREQ(trace::PhaseScope::Current(), "miss-flush");
    }
    EXPECT_STREQ(trace::PhaseScope::Current(), "dirty-merge");
  }
  EXPECT_EQ(trace::PhaseScope::Current(), nullptr);
}

TEST_F(TraceTest, RingWrapsKeepingNewestEvents) {
  auto& tracer = trace::Tracer::Global();
  tracer.set_shard_capacity(16);
  tracer.Clear();
  // All records come from this one thread, i.e. land in one shard.
  for (int i = 0; i < 100; ++i) {
    tracer.Record(MakeEvent("e" + std::to_string(i), "kernel", i, 1));
  }
  const auto events = tracer.Snapshot();
  EXPECT_EQ(events.size(), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  // The oldest events were overwritten; e84..e99 survive (order by start).
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().name, "e84");
  EXPECT_EQ(events.back().name, "e99");
}

TEST_F(TraceTest, SnapshotSortsByTimelineThenStart) {
  auto& tracer = trace::Tracer::Global();
  tracer.Record(MakeEvent("sim-late", "kernel", 50, 1));
  tracer.Record(MakeEvent("sim-early", "kernel", 10, 1));
  { trace::Span span("wall", trace::category::kHost); }
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].timeline, trace::Timeline::kWall);
  EXPECT_EQ(events[1].name, "sim-early");
  EXPECT_EQ(events[2].name, "sim-late");
}

TEST_F(TraceTest, SummarizeAggregatesPerCategory) {
  auto& tracer = trace::Tracer::Global();
  tracer.Record(MakeEvent("a", "kernel", 0, 5));
  tracer.Record(MakeEvent("b", "kernel", 5, 7));
  tracer.Record(MakeEvent("c", "transfer", 12, 2));
  const auto summary = tracer.Summarize();
  ASSERT_EQ(summary.size(), 2u);
  // Sorted by descending total within the timeline.
  EXPECT_EQ(summary[0].category, "kernel");
  EXPECT_EQ(summary[0].count, 2u);
  EXPECT_DOUBLE_EQ(summary[0].total_us, 12.0);
  EXPECT_EQ(summary[1].category, "transfer");
  EXPECT_EQ(summary[1].count, 1u);
  const std::string table = tracer.SummaryTable();
  EXPECT_NE(table.find("kernel"), std::string::npos);
  EXPECT_NE(table.find("transfer"), std::string::npos);
}

TEST_F(TraceTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(trace::JsonEscape("plain"), "plain");
  EXPECT_EQ(trace::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(trace::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(trace::JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(trace::JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST_F(TraceTest, ChromeTraceIsWellFormedJson) {
  auto& tracer = trace::Tracer::Global();
  // Adversarial names: quotes, backslashes, newlines, control chars.
  tracer.Record(MakeEvent("k\"quoted\"", "kernel", 0, 3));
  tracer.Record(MakeEvent("back\\slash\nnewline\x02", "transfer", 3, 1));
  {
    trace::Span span("wall \"span\"", trace::category::kHost);
  }
  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata rows
}

TEST_F(TraceTest, ConcurrentRecordingLosesNothingBelowCapacity) {
  auto& tracer = trace::Tracer::Global();
  ThreadPool pool(8);
  constexpr std::int64_t kEvents = 4000;
  pool.ParallelFor(0, kEvents, [&](std::int64_t i) {
    tracer.Record(
        MakeEvent("e" + std::to_string(i), "kernel", static_cast<double>(i),
                  1.0));
  });
  // 4000 << 8 shards * 2^14 capacity: nothing may drop, and every event
  // must surface exactly once.
  EXPECT_EQ(tracer.dropped(), 0u);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kEvents));
  std::set<std::string> names;
  for (const auto& event : events) names.insert(event.name);
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kEvents));
}

TEST_F(TraceTest, EndToEndRunEmitsRuntimeCategories) {
  // A replicated written array (no localaccess) forces dirty-bit
  // propagation between the two GPUs; the loads give transfer spans.
  constexpr char kSource[] = R"(
void bump(int n, int* a) {
  #pragma acc data copy(a[0:n])
  {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      a[i] = a[i] + 1;
    }
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  runtime::AccProgram program =
      runtime::AccProgram::FromSource("bump", kSource);
  constexpr int n = 4096;
  std::vector<std::int32_t> a(n, 7);
  runtime::RunConfig config{.platform = platform.get(), .num_gpus = 2};
  config.options.trace = true;
  runtime::ProgramRunner runner(program, config);
  runner.BindArray("a", a.data(), ir::ValType::kI32, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.Run("bump");
  for (int i = 0; i < n; ++i) ASSERT_EQ(a[i], 8) << "at index " << i;

  std::set<std::string> sim_cats, wall_cats;
  int max_device = -1;
  for (const auto& event : trace::Tracer::Global().Snapshot()) {
    if (event.timeline == trace::Timeline::kSim) {
      sim_cats.insert(event.category);
      max_device = std::max(max_device, event.device);
    } else {
      wall_cats.insert(event.category);
    }
  }
  EXPECT_TRUE(sim_cats.count(trace::category::kKernel));
  EXPECT_TRUE(sim_cats.count(trace::category::kTransfer));
  EXPECT_TRUE(sim_cats.count(trace::category::kDirtyMerge));
  EXPECT_TRUE(wall_cats.count(trace::category::kOffload));
  EXPECT_TRUE(wall_cats.count(trace::category::kLoader));
  EXPECT_TRUE(wall_cats.count(trace::category::kHost));
  EXPECT_EQ(max_device, 1);  // spans on both simulated GPUs
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CounterAddsAndResets) {
  metrics::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsTest, GaugeSetsAndResets) {
  metrics::Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Set(-1);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsTest, HistogramTracksMomentsAndBuckets) {
  metrics::Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  hist.Observe(1.0);
  hist.Observe(2.0);
  hist.Observe(1024.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 1027.0);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1024.0);
  EXPECT_NEAR(hist.mean(), 1027.0 / 3, 1e-12);
  // Power-of-two buckets: 1.0 -> bucket 0, 2.0 -> bucket 1, 1024 -> 10.
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(10), 1u);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
}

TEST(MetricsTest, HistogramIsConcurrencySafe) {
  metrics::Histogram hist;
  ThreadPool pool(8);
  pool.ParallelFor(1, 1001,
                   [&](std::int64_t i) { hist.Observe(static_cast<double>(i)); });
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_DOUBLE_EQ(hist.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1000.0);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  auto& registry = metrics::Registry::Global();
  metrics::Counter& a = registry.counter("test.stable_counter");
  metrics::Counter& b = registry.counter("test.stable_counter");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  metrics::Gauge& g1 = registry.gauge("test.stable_gauge");
  metrics::Gauge& g2 = registry.gauge("test.stable_gauge");
  EXPECT_EQ(&g1, &g2);
  metrics::Histogram& h1 = registry.histogram("test.stable_hist");
  metrics::Histogram& h2 = registry.histogram("test.stable_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsTest, WriteTextListsAllKindsSorted) {
  auto& registry = metrics::Registry::Global();
  registry.counter("test.z_counter").Add(5);
  registry.gauge("test.a_gauge").Set(1.5);
  registry.histogram("test.m_hist").Observe(4.0);
  std::ostringstream out;
  registry.WriteText(out);
  const std::string text = out.str();
  const auto gauge_pos = text.find("test.a_gauge");
  const auto hist_pos = text.find("test.m_hist");
  const auto counter_pos = text.find("test.z_counter");
  ASSERT_NE(gauge_pos, std::string::npos);
  ASSERT_NE(hist_pos, std::string::npos);
  ASSERT_NE(counter_pos, std::string::npos);
  EXPECT_LT(gauge_pos, hist_pos);
  EXPECT_LT(hist_pos, counter_pos);
}

TEST(MetricsTest, ResetAllZeroesEverything) {
  auto& registry = metrics::Registry::Global();
  registry.counter("test.reset_counter").Add(9);
  registry.gauge("test.reset_gauge").Set(9);
  registry.histogram("test.reset_hist").Observe(9);
  registry.ResetAll();
  EXPECT_EQ(registry.counter("test.reset_counter").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("test.reset_gauge").value(), 0.0);
  EXPECT_EQ(registry.histogram("test.reset_hist").count(), 0u);
}

}  // namespace
}  // namespace accmg
