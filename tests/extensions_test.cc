// Tests for the extensions beyond the paper's prototype:
//  * weighted task mapping for heterogeneous GPUs,
//  * 2-D stencils through the 1-D stride+halo form of localaccess — the
//    paper's Section VI "future work", realizable because a row-major
//    2-D row-block decomposition is exactly stride(C), left(C), right(C).
#include <gtest/gtest.h>

#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg {
namespace {

using runtime::AccProgram;
using runtime::ProgramRunner;
using runtime::RunConfig;

constexpr char kScaleSource[] = R"(
void scale(int n, float* x) {
  #pragma acc localaccess(x: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    x[i] = x[i] * 2.0f;
  }
}
)";

std::unique_ptr<sim::Platform> MakeHeterogeneousPlatform() {
  // One full-speed C2075 and one at half throughput.
  sim::DeviceSpec fast = sim::TeslaC2075();
  sim::DeviceSpec slow = sim::TeslaC2075();
  slow.name = "Tesla C2075 (derated)";
  slow.instr_per_sec /= 2;
  slow.mem_bandwidth_bps /= 2;
  return std::make_unique<sim::Platform>(
      std::vector<sim::DeviceSpec>{fast, slow}, sim::DesktopTopology(2),
      sim::CoreI7Desktop());
}

double RunScale(sim::Platform& platform, bool weighted,
                std::vector<float>& x) {
  const AccProgram program = AccProgram::FromSource("scale", kScaleSource);
  runtime::RunConfig config{.platform = &platform, .num_gpus = 2};
  config.options.weighted_task_mapping = weighted;
  ProgramRunner runner(program, config);
  runner.BindArray("x", x.data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(x.size()));
  runner.BindScalar("n", static_cast<std::int64_t>(x.size()));
  return runner.Run("scale")
      .time[sim::TimeCategory::kKernel];
}

TEST(WeightedMappingTest, CorrectOnHeterogeneousGpus) {
  auto platform = MakeHeterogeneousPlatform();
  std::vector<float> x(10001, 3.0f);
  RunScale(*platform, /*weighted=*/true, x);
  for (float v : x) ASSERT_EQ(v, 6.0f);
}

TEST(WeightedMappingTest, FasterThanEqualSplitOnHeterogeneousGpus) {
  std::vector<float> a(1 << 20, 1.0f), b(1 << 20, 1.0f);
  auto p1 = MakeHeterogeneousPlatform();
  const double equal = RunScale(*p1, false, a);
  auto p2 = MakeHeterogeneousPlatform();
  const double weighted = RunScale(*p2, true, b);
  // Equal split is bounded by the slow GPU (half speed): kernel time ~2/3
  // longer than the weighted split.
  EXPECT_LT(weighted, equal * 0.85);
  EXPECT_EQ(a, b);
}

TEST(WeightedMappingTest, NoChangeOnHomogeneousGpus) {
  std::vector<float> a(4096, 1.0f), b(4096, 1.0f);
  auto p1 = sim::MakeDesktopMachine(2);
  const double equal = RunScale(*p1, false, a);
  auto p2 = sim::MakeDesktopMachine(2);
  const double weighted = RunScale(*p2, true, b);
  EXPECT_NEAR(weighted, equal, equal * 1e-9);
}

// ---------------------------------------------------------------------------
// 2-D stencil through stride+halo localaccess (paper future work, Section VI)
// ---------------------------------------------------------------------------

TEST(TwoDimensionalStencilTest, RowBlockDecompositionViaStrideHalo) {
  // 5-point 2-D Jacobi on a rows x cols grid stored row-major. The parallel
  // loop runs over rows; iteration r reads rows r-1..r+1, i.e. elements
  // [cols*r - cols, cols*(r+1) - 1 + cols] — exactly stride(cols),
  // left(cols), right(cols).
  constexpr char kSource[] = R"(
void jacobi2d(int rows, int cols, int steps, double* u, double* v) {
  #pragma acc data copy(u[0:rows*cols]) create(v[0:rows*cols])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: stride(cols), left(cols), right(cols)) \
                  (v: stride(cols))
      #pragma acc parallel loop
      for (int r = 0; r < rows; r++) {
        for (int c = 0; c < cols; c++) {
          if (r == 0 || r == rows - 1 || c == 0 || c == cols - 1) {
            v[r * cols + c] = u[r * cols + c];
          } else {
            v[r * cols + c] = 0.2 * (u[r * cols + c]
                                     + u[(r - 1) * cols + c]
                                     + u[(r + 1) * cols + c]
                                     + u[r * cols + c - 1]
                                     + u[r * cols + c + 1]);
          }
        }
      }
      #pragma acc localaccess(u: stride(cols)) (v: stride(cols))
      #pragma acc parallel loop
      for (int r = 0; r < rows; r++) {
        for (int c = 0; c < cols; c++) {
          u[r * cols + c] = v[r * cols + c];
        }
      }
    }
  }
}
)";
  constexpr int rows = 64, cols = 48, steps = 5;
  auto reference = [&] {
    std::vector<double> u(static_cast<std::size_t>(rows) * cols);
    std::vector<double> v(u.size());
    for (std::size_t i = 0; i < u.size(); ++i) u[i] = (i % 17) * 0.25;
    for (int t = 0; t < steps; ++t) {
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          const std::size_t idx = static_cast<std::size_t>(r) * cols + c;
          if (r == 0 || r == rows - 1 || c == 0 || c == cols - 1) {
            v[idx] = u[idx];
          } else {
            v[idx] = 0.2 * (u[idx] + u[idx - cols] + u[idx + cols] +
                            u[idx - 1] + u[idx + 1]);
          }
        }
      }
      u = v;
    }
    return u;
  }();

  const AccProgram program = AccProgram::FromSource("jacobi2d", kSource);
  for (int gpus : {1, 2, 3}) {
    auto platform = sim::MakeSupercomputerNode(3);
    std::vector<double> u(static_cast<std::size_t>(rows) * cols);
    std::vector<double> v(u.size(), 0.0);
    for (std::size_t i = 0; i < u.size(); ++i) u[i] = (i % 17) * 0.25;
    ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                            .num_gpus = gpus});
    runner.BindArray("u", u.data(), ir::ValType::kF64,
                     static_cast<std::int64_t>(u.size()));
    runner.BindArray("v", v.data(), ir::ValType::kF64,
                     static_cast<std::int64_t>(v.size()));
    runner.BindScalar("rows", static_cast<std::int64_t>(rows));
    runner.BindScalar("cols", static_cast<std::int64_t>(cols));
    runner.BindScalar("steps", static_cast<std::int64_t>(steps));
    const runtime::RunReport report = runner.Run("jacobi2d");
    for (std::size_t i = 0; i < u.size(); ++i) {
      ASSERT_EQ(u[i], reference[i]) << "gpus=" << gpus << " idx=" << i;
    }
    if (gpus > 1) {
      // The multi-GPU runs must exchange row halos, not whole replicas.
      EXPECT_GT(report.comm.halo_refreshes, 0u);
      EXPECT_LT(report.peak_user_bytes,
                2u * u.size() * sizeof(double) * static_cast<unsigned>(gpus));
    }
  }
}

TEST(TwoDimensionalStencilTest, DistributedMemoryStaysSubLinear) {
  // Memory check for the 2-D case: user bytes on 3 GPUs ~= one grid copy
  // (+ halos), not three.
  constexpr char kSource[] = R"(
void touch(int rows, int cols, double* u) {
  #pragma acc localaccess(u: stride(cols), left(cols), right(cols))
  #pragma acc parallel loop
  for (int r = 0; r < rows; r++) {
    for (int c = 0; c < cols; c++) {
      u[r * cols + c] = u[r * cols + c] + 1.0;
    }
  }
}
)";
  constexpr int rows = 300, cols = 100;
  const AccProgram program = AccProgram::FromSource("touch", kSource);
  auto platform = sim::MakeSupercomputerNode(3);
  std::vector<double> u(static_cast<std::size_t>(rows) * cols, 0.0);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 3});
  runner.BindArray("u", u.data(), ir::ValType::kF64,
                   static_cast<std::int64_t>(u.size()));
  runner.BindScalar("rows", static_cast<std::int64_t>(rows));
  runner.BindScalar("cols", static_cast<std::int64_t>(cols));
  const runtime::RunReport report = runner.Run("touch");
  EXPECT_EQ(u[0], 1.0);
  const std::size_t one_copy = u.size() * sizeof(double);
  EXPECT_LT(report.peak_user_bytes, one_copy + 8 * cols * sizeof(double));
}

}  // namespace
}  // namespace accmg
