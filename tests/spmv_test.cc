// SpMV application tests: correctness on every backend, no inter-GPU
// communication (matrix distributed, vector replicated, proven-local writes).
#include <gtest/gtest.h>

#include "apps/spmv/spmv.h"
#include "sim/platform.h"

namespace accmg {
namespace {

class SpmvTest : public ::testing::TestWithParam<int> {};

TEST_P(SpmvTest, MatchesReference) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(3);
  const apps::SpmvInput input = apps::MakeSpmvInput(3000, 24);
  const std::vector<float> expected = apps::SpmvReference(input);

  std::vector<float> y;
  const auto report = apps::RunSpmvAcc(input, *platform, gpus, &y);
  ASSERT_EQ(y.size(), expected.size());
  for (std::size_t r = 0; r < y.size(); ++r) {
    ASSERT_EQ(y[r], expected[r]) << "row " << r;
  }
  // Like MD: no inter-GPU communication at all.
  EXPECT_EQ(report.time[sim::TimeCategory::kGpuGpu], 0.0);
  EXPECT_EQ(report.counters.p2p_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, SpmvTest, ::testing::Values(1, 2, 3));

TEST(SpmvTest, BaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::SpmvInput input = apps::MakeSpmvInput(1500, 16);
  const std::vector<float> expected = apps::SpmvReference(input);

  std::vector<float> y;
  apps::RunSpmvOpenMp(input, *platform, &y);
  EXPECT_EQ(y, expected);
  apps::RunSpmvCuda(input, *platform, &y);
  EXPECT_EQ(y, expected);
}

TEST(SpmvTest, MatrixIsDistributedVectorReplicated) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::SpmvInput input = apps::MakeSpmvInput(4000, 16);
  std::vector<float> y;
  const auto report = apps::RunSpmvAcc(input, *platform, 2, &y);
  // values + cols split across 2 GPUs (one copy total), x replicated (two
  // copies), y split: total user memory ≈ matrix + 2x vector + y.
  const std::size_t matrix_bytes =
      input.values.size() * 4 + input.cols.size() * 4;
  const std::size_t vec_bytes = input.x.size() * 4;
  EXPECT_LT(report.peak_user_bytes,
            matrix_bytes + 3 * vec_bytes + vec_bytes + 4096);
  EXPECT_GT(report.peak_user_bytes, matrix_bytes);
}

}  // namespace
}  // namespace accmg
