// Exhaustive small-scale coverage: every IR opcode family through the
// source-level pipeline, app-source codegen fragments, and runtime edge
// cases (zero iterations, device OOM, empty arrays).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/bfs/bfs.h"
#include "apps/kmeans/kmeans.h"
#include "apps/md/md.h"
#include "frontend/sema.h"
#include "runtime/program.h"
#include "sim/platform.h"
#include "translator/cuda_codegen.h"

namespace accmg {
namespace {

using runtime::AccProgram;
using runtime::ProgramRunner;
using runtime::RunConfig;

/// Runs `expr` (over int scalars p, q and float scalars u, v) elementwise on
/// 2 GPUs and returns out[0].
double EvalViaKernel(const std::string& type, const std::string& expr,
                     std::int64_t p, std::int64_t q, double u, double v) {
  const std::string source = "void f(int n, long p, long q, double u, "
                             "double v, " + type + "* out) {\n"
                             "  #pragma acc parallel loop\n"
                             "  for (int i = 0; i < n; i++) {\n"
                             "    out[i] = " + expr + ";\n"
                             "  }\n"
                             "}\n";
  const AccProgram program = AccProgram::FromSource("f", source);
  auto platform = sim::MakeDesktopMachine(2);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindScalar("n", static_cast<std::int64_t>(4));
  runner.BindScalar("p", p);
  runner.BindScalar("q", q);
  runner.BindScalar("u", u);
  runner.BindScalar("v", v);
  if (type == "double") {
    std::vector<double> out(4, 0);
    runner.BindArray("out", out.data(), ir::ValType::kF64, 4);
    runner.Run("f");
    return out[0];
  }
  std::vector<std::int64_t> out(4, 0);
  runner.BindArray("out", out.data(), ir::ValType::kI64, 4);
  runner.Run("f");
  return static_cast<double>(out[0]);
}

TEST(OpcodeCoverageTest, IntegerOps) {
  EXPECT_EQ(EvalViaKernel("long", "p & q", 0b1100, 0b1010, 0, 0), 0b1000);
  EXPECT_EQ(EvalViaKernel("long", "p | q", 0b1100, 0b1010, 0, 0), 0b1110);
  EXPECT_EQ(EvalViaKernel("long", "p ^ q", 0b1100, 0b1010, 0, 0), 0b0110);
  EXPECT_EQ(EvalViaKernel("long", "~p", 5, 0, 0, 0), -6);
  EXPECT_EQ(EvalViaKernel("long", "p << q", 3, 4, 0, 0), 48);
  EXPECT_EQ(EvalViaKernel("long", "p >> q", -64, 3, 0, 0), -8);
  EXPECT_EQ(EvalViaKernel("long", "abs(p)", -42, 0, 0, 0), 42);
  EXPECT_EQ(EvalViaKernel("long", "min(p, q)", 3, -7, 0, 0), -7);
  EXPECT_EQ(EvalViaKernel("long", "max(p, q)", 3, -7, 0, 0), 3);
  EXPECT_EQ(EvalViaKernel("long", "!p", 0, 0, 0, 0), 1);
  EXPECT_EQ(EvalViaKernel("long", "!q", 0, 9, 0, 0), 0);
}

TEST(OpcodeCoverageTest, FloatOps) {
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "floor(u)", 0, 0, 2.7, 0), 2.0);
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "ceil(u)", 0, 0, 2.2, 0), 3.0);
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "fabs(u)", 0, 0, -1.5, 0), 1.5);
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "exp(u)", 0, 0, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "log(u)", 0, 0, 1.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "pow(u, v)", 0, 0, 3.0, 2.0),
                   9.0);
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "-u", 0, 0, 2.5, 0), -2.5);
}

TEST(OpcodeCoverageTest, FloatComparisons) {
  EXPECT_EQ(EvalViaKernel("long", "u < v", 0, 0, 1.0, 2.0), 1);
  EXPECT_EQ(EvalViaKernel("long", "u <= v", 0, 0, 2.0, 2.0), 1);
  EXPECT_EQ(EvalViaKernel("long", "u > v", 0, 0, 1.0, 2.0), 0);
  EXPECT_EQ(EvalViaKernel("long", "u >= v", 0, 0, 2.0, 2.0), 1);
  EXPECT_EQ(EvalViaKernel("long", "u == v", 0, 0, 2.0, 2.0), 1);
  EXPECT_EQ(EvalViaKernel("long", "u != v", 0, 0, 2.0, 2.0), 0);
}

TEST(OpcodeCoverageTest, Conversions) {
  EXPECT_EQ(EvalViaKernel("long", "(int)u", 0, 0, -2.9, 0), -2);  // trunc
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "(double)p", 7, 0, 0, 0), 7.0);
  EXPECT_DOUBLE_EQ(EvalViaKernel("double", "(float)u", 0, 0, 0.1, 0),
                   static_cast<double>(0.1f));
  EXPECT_EQ(EvalViaKernel("long", "(int)(p * q)", 1 << 20, 1 << 20, 0, 0),
            0);  // i32 truncation wraps 2^40 to 0
}

// ---------------------------------------------------------------------------
// App-source codegen fragments
// ---------------------------------------------------------------------------

std::string CudaFor(const std::string& source, int opt_level = 1) {
  frontend::SourceBuffer buffer("app.c", source);
  auto ast = frontend::ParseAndAnalyze(buffer);
  translator::CompileOptions options;
  options.opt_level = opt_level;
  const translator::CompiledProgram compiled =
      translator::Compile(*ast, options);
  return translator::GenerateCudaProgram(compiled);
}

TEST(AppCodegenTest, MdKernelHasNoInstrumentation) {
  const std::string cuda = CudaFor(apps::MdSource());
  EXPECT_NE(cuda.find("__global__ void md_kernel0"), std::string::npos);
  // All writes proven local: no dirty bits, no miss checks.
  EXPECT_EQ(cuda.find("_dirty1"), std::string::npos);
  EXPECT_EQ(cuda.find("accmg_record_miss"), std::string::npos);
  EXPECT_NE(cuda.find("/* no inter-GPU communication required */"),
            std::string::npos);
}

TEST(AppCodegenTest, KmeansHasTwoKernelsAndArrayReductions) {
  // Per-source-loop codegen: compiled unfused (at the default level the
  // mid-end fuses the assignment loop into the update loop).
  const std::string cuda = CudaFor(apps::KmeansSource(), /*opt_level=*/0);
  EXPECT_NE(cuda.find("kmeans_kernel0"), std::string::npos);
  EXPECT_NE(cuda.find("kmeans_kernel1"), std::string::npos);
  EXPECT_NE(cuda.find("accmg_red_add(&sums_partial["), std::string::npos);
  EXPECT_NE(cuda.find("accmg_red_add(&counts_partial["), std::string::npos);
  EXPECT_NE(cuda.find("accmg_combine_array_reduction(\"sums\")"),
            std::string::npos);
}

TEST(AppCodegenTest, KmeansFusesIntoOneKernelAtDefaultLevel) {
  const std::string cuda = CudaFor(apps::KmeansSource());
  EXPECT_NE(cuda.find("kmeans_kernel0_fused"), std::string::npos);
  EXPECT_EQ(cuda.find("__global__ void kmeans_kernel1"), std::string::npos);
  // The fused kernel still carries both array reductions.
  EXPECT_NE(cuda.find("accmg_red_add(&sums_partial["), std::string::npos);
  EXPECT_NE(cuda.find("accmg_red_add(&counts_partial["), std::string::npos);
}

TEST(AppCodegenTest, BfsKernelCarriesDirtyBitInstrumentation) {
  const std::string cuda = CudaFor(apps::BfsSource());
  EXPECT_NE(cuda.find("cost_dirty1["), std::string::npos);
  EXPECT_NE(cuda.find("cost_dirty2["), std::string::npos);
  EXPECT_NE(cuda.find("accmg_propagate_dirty(\"cost\")"), std::string::npos);
  EXPECT_NE(cuda.find("accmg_load(\"edges\", DISTRIBUTE)"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Runtime edge cases
// ---------------------------------------------------------------------------

TEST(EdgeCaseTest, ZeroIterationLoopIsANoop) {
  constexpr char kSource[] = R"(
void f(int n, int* a) {
  #pragma acc parallel loop copy(a[0:4])
  for (int i = 0; i < n; i++) {
    a[i] = 1;
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> a(4, 9);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 4);
  runner.BindScalar("n", static_cast<std::int64_t>(0));
  EXPECT_NO_THROW(runner.Run("f"));
  EXPECT_EQ(a[0], 9);  // untouched
}

TEST(EdgeCaseTest, DeviceOomSurfacesAsDeviceError) {
  // Replicating a big array onto a tiny device must fail loudly.
  sim::DeviceSpec tiny = sim::TeslaC2075();
  tiny.memory_bytes = 1 << 16;  // 64 KB
  sim::Platform platform({tiny, tiny}, sim::DesktopTopology(2),
                         sim::CoreI7Desktop());
  constexpr char kSource[] = R"(
void f(int n, double* a) {
  #pragma acc parallel loop copy(a[0:n])
  for (int i = 0; i < n; i++) {
    a[i] = 0.0;
  }
}
)";
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<double> a(1 << 14, 0.0);  // 128 KB > 64 KB
  ProgramRunner runner(program, RunConfig{.platform = &platform,
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kF64,
                   static_cast<std::int64_t>(a.size()));
  runner.BindScalar("n", static_cast<std::int64_t>(a.size()));
  EXPECT_THROW(runner.Run("f"), DeviceError);
}

TEST(EdgeCaseTest, DistributionFitsWhereReplicationCannot) {
  // The paper's memory argument: with localaccess the same array fits on
  // devices that could not hold full replicas.
  sim::DeviceSpec small = sim::TeslaC2075();
  small.memory_bytes = 96 << 10;  // 96 KB per GPU
  sim::Platform platform({small, small}, sim::DesktopTopology(2),
                         sim::CoreI7Desktop());
  constexpr char kSource[] = R"(
void f(int n, double* a) {
  #pragma acc localaccess(a: stride(1))
  #pragma acc parallel loop copy(a[0:n])
  for (int i = 0; i < n; i++) {
    a[i] = 1.0;
  }
}
)";
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<double> a(1 << 14, 0.0);  // 128 KB total, 64 KB per segment
  ProgramRunner runner(program, RunConfig{.platform = &platform,
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kF64,
                   static_cast<std::int64_t>(a.size()));
  runner.BindScalar("n", static_cast<std::int64_t>(a.size()));
  EXPECT_NO_THROW(runner.Run("f"));
  EXPECT_EQ(a[12345], 1.0);
}

TEST(EdgeCaseTest, MoreGpusThanIterations) {
  constexpr char kSource[] = R"(
void f(int n, int* a) {
  #pragma acc parallel loop copy(a[0:4])
  for (int i = 0; i < n; i++) {
    a[i] = i + 100;
  }
}
)";
  auto platform = sim::MakeSupercomputerNode(3);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> a(4, 0);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 3});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 4);
  runner.BindScalar("n", static_cast<std::int64_t>(2));  // 2 iters, 3 GPUs
  runner.Run("f");
  EXPECT_EQ(a[0], 100);
  EXPECT_EQ(a[1], 101);
  EXPECT_EQ(a[2], 0);
}

}  // namespace
}  // namespace accmg
