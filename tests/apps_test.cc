// Application-level integration tests: the three paper workloads (MD,
// KMEANS, BFS) on every execution backend, checked against native references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <cstdint>

#include "apps/bfs/bfs.h"
#include "apps/heat2d/heat2d.h"
#include "apps/kmeans/kmeans.h"
#include "apps/lattice/lattice.h"
#include "apps/md/md.h"
#include "common/metrics.h"
#include "runtime/options.h"
#include "sim/platform.h"

namespace accmg {
namespace {

// ---------------------------------------------------------------------------
// MD
// ---------------------------------------------------------------------------

class MdTest : public ::testing::TestWithParam<int> {};

TEST_P(MdTest, ForcesMatchReference) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(3);
  const apps::MdInput input = apps::MakeMdInput(2048, 16);
  const std::vector<float> expected = apps::MdReference(input);

  std::vector<float> force;
  const auto report = apps::RunMdAcc(input, *platform, gpus, &force);
  ASSERT_EQ(force.size(), expected.size());
  for (std::size_t i = 0; i < force.size(); ++i) {
    ASSERT_EQ(force[i], expected[i]) << "component " << i;
  }
  // MD needs no inter-GPU communication (paper Section V-A).
  EXPECT_EQ(report.comm.miss_records_replayed, 0u);
  EXPECT_EQ(report.comm.dirty_chunks_sent, 0u);
  EXPECT_EQ(report.time[sim::TimeCategory::kGpuGpu], 0.0);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, MdTest, ::testing::Values(1, 2, 3));

TEST(MdTest, OpenMpAndCudaBaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::MdInput input = apps::MakeMdInput(1024, 12);
  const std::vector<float> expected = apps::MdReference(input);

  std::vector<float> force;
  apps::RunMdOpenMp(input, *platform, &force);
  for (std::size_t i = 0; i < force.size(); ++i) {
    ASSERT_EQ(force[i], expected[i]) << "openmp component " << i;
  }
  apps::RunMdCuda(input, *platform, &force);
  for (std::size_t i = 0; i < force.size(); ++i) {
    ASSERT_EQ(force[i], expected[i]) << "cuda component " << i;
  }
}

// ---------------------------------------------------------------------------
// KMEANS
// ---------------------------------------------------------------------------

class KmeansTest : public ::testing::TestWithParam<int> {};

TEST_P(KmeansTest, ConvergesToReferenceCentroids) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(3);
  const apps::KmeansInput input = apps::MakeKmeansInput(4000, 8, 4, 5);
  const apps::KmeansResult expected = apps::KmeansReference(input);

  apps::KmeansResult result;
  apps::RunKmeansAcc(input, *platform, gpus, &result);
  ASSERT_EQ(result.membership.size(), expected.membership.size());
  // Membership must match exactly (distances are computed in identical
  // float order per point).
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < result.membership.size(); ++i) {
    if (result.membership[i] != expected.membership[i]) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
  // Centroids accumulate in different orders; compare with tolerance.
  for (std::size_t i = 0; i < result.centroids.size(); ++i) {
    EXPECT_NEAR(result.centroids[i], expected.centroids[i],
                2e-3 * (1.0 + std::fabs(expected.centroids[i])))
        << "centroid component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, KmeansTest, ::testing::Values(1, 2, 3));

TEST(KmeansTest, BaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::KmeansInput input = apps::MakeKmeansInput(2000, 6, 3, 4);
  const apps::KmeansResult expected = apps::KmeansReference(input);

  apps::KmeansResult omp;
  apps::RunKmeansOpenMp(input, *platform, &omp);
  EXPECT_EQ(omp.membership, expected.membership);

  apps::KmeansResult cuda;
  apps::RunKmeansCuda(input, *platform, &cuda);
  EXPECT_EQ(cuda.membership, expected.membership);
}

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

class BfsTest : public ::testing::TestWithParam<int> {};

TEST_P(BfsTest, LevelsMatchReference) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(3);
  const apps::BfsInput input = apps::MakeBfsInput(20000, 12);
  const std::vector<std::int32_t> expected = apps::BfsReference(input);

  std::vector<std::int32_t> cost;
  const auto report = apps::RunBfsAcc(input, *platform, gpus, &cost);
  ASSERT_EQ(cost.size(), expected.size());
  for (std::size_t i = 0; i < cost.size(); ++i) {
    ASSERT_EQ(cost[i], expected[i]) << "node " << i;
  }
  if (gpus > 1) {
    // The replicated cost array must have exchanged dirty chunks.
    EXPECT_GT(report.comm.dirty_chunks_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, BfsTest, ::testing::Values(1, 2, 3));

TEST(BfsTest, BaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::BfsInput input = apps::MakeBfsInput(10000, 10);
  const std::vector<std::int32_t> expected = apps::BfsReference(input);

  std::vector<std::int32_t> cost;
  apps::RunBfsOpenMp(input, *platform, &cost);
  EXPECT_EQ(cost, expected);

  apps::RunBfsCuda(input, *platform, &cost);
  EXPECT_EQ(cost, expected);
}

TEST(BfsTest, UsesRoughlyTenLevels) {
  // The generator should produce diameters near the paper's 10 kernel
  // launches for realistic sizes.
  const apps::BfsInput input = apps::MakeBfsInput(100000, 32);
  const std::vector<std::int32_t> levels = apps::BfsReference(input);
  const std::int32_t max_level =
      *std::max_element(levels.begin(), levels.end());
  EXPECT_GE(max_level, 3);
  EXPECT_LE(max_level, 24);
}

// ---------------------------------------------------------------------------
// HEAT2D / LATTICE (2-D row-block stencils)
// ---------------------------------------------------------------------------

class Heat2dTest : public ::testing::TestWithParam<int> {};

TEST_P(Heat2dTest, BitIdenticalToReferenceUnderValidatorInBothMapperModes) {
  const int gpus = GetParam();
  const apps::Heat2dInput input = apps::MakeHeat2dInput(37, 12, 4);
  const std::vector<float> expected = apps::Heat2dReference(input);

  for (const auto mapper :
       {runtime::TaskMapper::kEqual, runtime::TaskMapper::kMeasured}) {
    auto platform = sim::MakeSupercomputerNode(4);
    runtime::ExecOptions options;
    options.validate = true;
    options.mapper = mapper;
    std::vector<float> u;
    const auto report = apps::RunHeat2dAcc(input, *platform, gpus, &u, options);
    EXPECT_EQ(report.validator.divergences, 0u);
    ASSERT_EQ(u.size(), expected.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      ASSERT_EQ(u[i], expected[i])
          << "element " << i << " mapper "
          << (mapper == runtime::TaskMapper::kEqual ? "equal" : "measured");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, Heat2dTest, ::testing::Values(1, 2, 4));

TEST(Heat2dTest, BaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::Heat2dInput input = apps::MakeHeat2dInput(24, 10, 3);
  const std::vector<float> expected = apps::Heat2dReference(input);

  std::vector<float> u;
  apps::RunHeat2dOpenMp(input, *platform, &u);
  EXPECT_EQ(u, expected);
  apps::RunHeat2dCuda(input, *platform, &u);
  EXPECT_EQ(u, expected);
}

class LatticeTest : public ::testing::TestWithParam<int> {};

TEST_P(LatticeTest, BitIdenticalToReferenceUnderValidatorInBothMapperModes) {
  const int gpus = GetParam();
  const apps::LatticeInput input = apps::MakeLatticeInput(29, 9, 5);
  const std::vector<float> expected = apps::LatticeReference(input);

  for (const auto mapper :
       {runtime::TaskMapper::kEqual, runtime::TaskMapper::kMeasured}) {
    auto platform = sim::MakeSupercomputerNode(4);
    runtime::ExecOptions options;
    options.validate = true;
    options.mapper = mapper;
    std::vector<float> phi;
    const auto report =
        apps::RunLatticeAcc(input, *platform, gpus, &phi, options);
    EXPECT_EQ(report.validator.divergences, 0u);
    ASSERT_EQ(phi.size(), expected.size());
    for (std::size_t i = 0; i < phi.size(); ++i) {
      ASSERT_EQ(phi[i], expected[i])
          << "element " << i << " mapper "
          << (mapper == runtime::TaskMapper::kEqual ? "equal" : "measured");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, LatticeTest, ::testing::Values(1, 2, 4));

TEST(LatticeTest, BaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::LatticeInput input = apps::MakeLatticeInput(20, 8, 3);
  const std::vector<float> expected = apps::LatticeReference(input);

  std::vector<float> phi;
  apps::RunLatticeOpenMp(input, *platform, &phi);
  EXPECT_EQ(phi, expected);
  apps::RunLatticeCuda(input, *platform, &phi);
  EXPECT_EQ(phi, expected);
}

// The measured mapper actually adapts: on a node whose devices publish
// different throughputs, the second execution of each offload departs from
// equal division (mapper.rebalances fires) yet the result stays
// bit-identical to the equal split.
TEST(Heat2dTest, MeasuredMapperRebalancesWithoutChangingResults) {
  const apps::Heat2dInput input = apps::MakeHeat2dInput(40, 10, 6);
  metrics::Counter& rebalances =
      metrics::Registry::Global().counter("mapper.rebalances");
  metrics::Counter& measured_splits =
      metrics::Registry::Global().counter("mapper.measured_splits");

  std::vector<float> equal_u, measured_u;
  {
    auto platform = sim::MakeSupercomputerNode(3);
    runtime::ExecOptions options;
    apps::RunHeat2dAcc(input, *platform, 3, &equal_u, options);
  }
  const std::uint64_t rebalances_before = rebalances.value();
  const std::uint64_t measured_before = measured_splits.value();
  {
    auto platform = sim::MakeSupercomputerNode(3);
    runtime::ExecOptions options;
    options.mapper = runtime::TaskMapper::kMeasured;
    apps::RunHeat2dAcc(input, *platform, 3, &measured_u, options);
  }
  EXPECT_GT(rebalances.value(), rebalances_before);
  EXPECT_GT(measured_splits.value(), measured_before);
  EXPECT_EQ(measured_u, equal_u);
}

}  // namespace
}  // namespace accmg
