// Application-level integration tests: the three paper workloads (MD,
// KMEANS, BFS) on every execution backend, checked against native references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/bfs/bfs.h"
#include "apps/kmeans/kmeans.h"
#include "apps/md/md.h"
#include "sim/platform.h"

namespace accmg {
namespace {

// ---------------------------------------------------------------------------
// MD
// ---------------------------------------------------------------------------

class MdTest : public ::testing::TestWithParam<int> {};

TEST_P(MdTest, ForcesMatchReference) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(3);
  const apps::MdInput input = apps::MakeMdInput(2048, 16);
  const std::vector<float> expected = apps::MdReference(input);

  std::vector<float> force;
  const auto report = apps::RunMdAcc(input, *platform, gpus, &force);
  ASSERT_EQ(force.size(), expected.size());
  for (std::size_t i = 0; i < force.size(); ++i) {
    ASSERT_EQ(force[i], expected[i]) << "component " << i;
  }
  // MD needs no inter-GPU communication (paper Section V-A).
  EXPECT_EQ(report.comm.miss_records_replayed, 0u);
  EXPECT_EQ(report.comm.dirty_chunks_sent, 0u);
  EXPECT_EQ(report.time[sim::TimeCategory::kGpuGpu], 0.0);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, MdTest, ::testing::Values(1, 2, 3));

TEST(MdTest, OpenMpAndCudaBaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::MdInput input = apps::MakeMdInput(1024, 12);
  const std::vector<float> expected = apps::MdReference(input);

  std::vector<float> force;
  apps::RunMdOpenMp(input, *platform, &force);
  for (std::size_t i = 0; i < force.size(); ++i) {
    ASSERT_EQ(force[i], expected[i]) << "openmp component " << i;
  }
  apps::RunMdCuda(input, *platform, &force);
  for (std::size_t i = 0; i < force.size(); ++i) {
    ASSERT_EQ(force[i], expected[i]) << "cuda component " << i;
  }
}

// ---------------------------------------------------------------------------
// KMEANS
// ---------------------------------------------------------------------------

class KmeansTest : public ::testing::TestWithParam<int> {};

TEST_P(KmeansTest, ConvergesToReferenceCentroids) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(3);
  const apps::KmeansInput input = apps::MakeKmeansInput(4000, 8, 4, 5);
  const apps::KmeansResult expected = apps::KmeansReference(input);

  apps::KmeansResult result;
  apps::RunKmeansAcc(input, *platform, gpus, &result);
  ASSERT_EQ(result.membership.size(), expected.membership.size());
  // Membership must match exactly (distances are computed in identical
  // float order per point).
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < result.membership.size(); ++i) {
    if (result.membership[i] != expected.membership[i]) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
  // Centroids accumulate in different orders; compare with tolerance.
  for (std::size_t i = 0; i < result.centroids.size(); ++i) {
    EXPECT_NEAR(result.centroids[i], expected.centroids[i],
                2e-3 * (1.0 + std::fabs(expected.centroids[i])))
        << "centroid component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, KmeansTest, ::testing::Values(1, 2, 3));

TEST(KmeansTest, BaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::KmeansInput input = apps::MakeKmeansInput(2000, 6, 3, 4);
  const apps::KmeansResult expected = apps::KmeansReference(input);

  apps::KmeansResult omp;
  apps::RunKmeansOpenMp(input, *platform, &omp);
  EXPECT_EQ(omp.membership, expected.membership);

  apps::KmeansResult cuda;
  apps::RunKmeansCuda(input, *platform, &cuda);
  EXPECT_EQ(cuda.membership, expected.membership);
}

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

class BfsTest : public ::testing::TestWithParam<int> {};

TEST_P(BfsTest, LevelsMatchReference) {
  const int gpus = GetParam();
  auto platform = sim::MakeSupercomputerNode(3);
  const apps::BfsInput input = apps::MakeBfsInput(20000, 12);
  const std::vector<std::int32_t> expected = apps::BfsReference(input);

  std::vector<std::int32_t> cost;
  const auto report = apps::RunBfsAcc(input, *platform, gpus, &cost);
  ASSERT_EQ(cost.size(), expected.size());
  for (std::size_t i = 0; i < cost.size(); ++i) {
    ASSERT_EQ(cost[i], expected[i]) << "node " << i;
  }
  if (gpus > 1) {
    // The replicated cost array must have exchanged dirty chunks.
    EXPECT_GT(report.comm.dirty_chunks_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, BfsTest, ::testing::Values(1, 2, 3));

TEST(BfsTest, BaselinesMatchReference) {
  auto platform = sim::MakeDesktopMachine(2);
  const apps::BfsInput input = apps::MakeBfsInput(10000, 10);
  const std::vector<std::int32_t> expected = apps::BfsReference(input);

  std::vector<std::int32_t> cost;
  apps::RunBfsOpenMp(input, *platform, &cost);
  EXPECT_EQ(cost, expected);

  apps::RunBfsCuda(input, *platform, &cost);
  EXPECT_EQ(cost, expected);
}

TEST(BfsTest, UsesRoughlyTenLevels) {
  // The generator should produce diameters near the paper's 10 kernel
  // launches for realistic sizes.
  const apps::BfsInput input = apps::MakeBfsInput(100000, 32);
  const std::vector<std::int32_t> levels = apps::BfsReference(input);
  const std::int32_t max_level =
      *std::max_element(levels.begin(), levels.end());
  EXPECT_GE(max_level, 3);
  EXPECT_LE(max_level, 24);
}

}  // namespace
}  // namespace accmg
