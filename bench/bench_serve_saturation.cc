// Saturation benchmark for the resident service (src/service/): how much
// does the compiled-program cache buy under a stream of jobs, and does
// per-job billing stay exact when jobs run through the shared platform?
//
// Two phases, both emitted as machine-readable JSON:
//
// 1. Saturation: N copies of a compile-heavy synthetic program (many small
//    parallel loops — translation dominates execution) are pushed through
//    an AccService, once with every job carrying a unique source salt
//    (cold: every submission compiles) and once byte-identical (warm: one
//    compile, N-1 cache hits). The jobs/sec ratio is the cache's win;
//    the acceptance bar is warm >= 3x cold on the 2-GPU platform.
//
// 2. Billing identity: a mix of builtin-app jobs runs once in isolation
//    (fresh platform per job, classic RunConfig) and once concurrently
//    through one shared service; each concurrent job's billed bytes and
//    transfer counts must be bit-identical to its isolated run. This is
//    the end-to-end check of per-device counter attribution
//    (sim::Platform::device_counters + RunConfig::shared_platform).
//    Any mismatch fails the process.
//
// Usage: bench_serve_saturation [--quick] [--out=<path>]
//   --quick  fewer jobs (CI smoke)
//   --out    write the JSON object to <path> (always printed to stdout)
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/bfs/bfs.h"
#include "apps/kmeans/kmeans.h"
#include "apps/md/md.h"
#include "apps/spmv/spmv.h"
#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "ir/ir.h"
#include "service/builtin_apps.h"
#include "service/service.h"
#include "sim/platform.h"

namespace accmg {
namespace {

/// A program whose translation cost dwarfs its execution cost: `loops`
/// independent parallel loops over a tiny array. Each loop becomes its own
/// kernel through the full frontend/translator pipeline.
std::string MakeSyntheticSource(int loops) {
  std::ostringstream os;
  os << "void serveload(int n, float* a, float* b) {\n";
  os << "  #pragma acc data copy(a[0:n]) copyin(b[0:n])\n  {\n";
  for (int k = 0; k < loops; ++k) {
    // Long straight-line bodies: parsing, sema and translation pay per
    // statement, while execution pays per statement *per element* — with a
    // tiny n the compile share dominates, which is the point of this
    // workload (measure the cache, not the interpreter).
    os << "    #pragma acc localaccess(a: stride(1))\n"
       << "    #pragma acc parallel loop\n"
       << "    for (int i = 0; i < n; i++) {\n"
       << "      float t0 = a[i] * 0.5f + b[i] + " << k << ".0f;\n";
    for (int s = 1; s <= 16; ++s) {
      os << "      float t" << s << " = t" << s - 1 << " * 1.0625f - b[i] * "
         << s << ".5f + " << s << ".25f;\n";
    }
    os << "      a[i] = t16 * 0.125f + t8 * 0.25f + t0 * 0.5f;\n"
       << "    }\n";
  }
  os << "  }\n}\n";
  return os.str();
}

service::JobRequest MakeSyntheticJob(std::string source) {
  struct State {
    std::vector<float> a, b;
  };
  auto state = std::make_shared<State>();
  const int n = 8;
  state->a.assign(n, 1.0f);
  state->b.assign(n, 0.5f);

  service::JobRequest request;
  request.name = "serveload";
  request.function = "serveload";
  request.source = std::move(source);
  request.gpus = 1;
  // The interpreter executes whole thread blocks; a 256-wide block over 8
  // elements would spend 97% of its time on bounds-failed threads and
  // drown the compile cost this bench wants to expose.
  request.exec_options.block_size = 8;
  request.bind = [state, n](runtime::ProgramRunner& runner) {
    runner.BindScalar("n", static_cast<std::int64_t>(n));
    runner.BindArray("a", state->a.data(), ir::ValType::kF32, n);
    runner.BindArray("b", state->b.data(), ir::ValType::kF32, n);
  };
  return request;
}

struct SaturationRow {
  int gpus = 0;
  int jobs = 0;
  double cold_jobs_per_sec = 0;
  double warm_jobs_per_sec = 0;

  double WarmOverCold() const {
    return cold_jobs_per_sec > 0 ? warm_jobs_per_sec / cold_jobs_per_sec : 0;
  }
};

double RunStream(sim::Platform& platform, int jobs, bool cold,
                 const std::string& source) {
  service::AccService::Config config;
  config.platform = &platform;
  config.workers = 2;
  config.cache_capacity = static_cast<std::size_t>(jobs) + 8;
  config.queue_capacity = static_cast<std::size_t>(jobs) + 8;
  service::AccService service(config);

  Stopwatch watch;
  for (int j = 0; j < jobs; ++j) {
    std::string job_source = source;
    if (cold) {
      // A unique trailing comment changes the SHA-256 cache key without
      // changing semantics: every submission compiles from scratch.
      job_source += "// cold-salt " + std::to_string(j) + "\n";
    }
    const int id = service.Submit(MakeSyntheticJob(std::move(job_source)));
    if (id < 0) {
      std::cerr << "bench_serve_saturation: admission reject at job " << j
                << "\n";
      std::exit(1);
    }
  }
  service.Drain();
  return watch.ElapsedSeconds();
}

SaturationRow MeasureSaturation(int gpus, int jobs,
                                const std::string& source) {
  SaturationRow row;
  row.gpus = gpus;
  row.jobs = jobs;
  {
    auto platform = sim::MakeSupercomputerNode(gpus);
    row.cold_jobs_per_sec = jobs / RunStream(*platform, jobs, true, source);
  }
  {
    auto platform = sim::MakeSupercomputerNode(gpus);
    row.warm_jobs_per_sec = jobs / RunStream(*platform, jobs, false, source);
  }
  return row;
}

struct IdentityRow {
  std::string app;
  int gpus = 0;
  std::uint64_t sequential_bytes = 0, concurrent_bytes = 0;
  std::uint64_t sequential_transfers = 0, concurrent_transfers = 0;

  bool Identical() const {
    return sequential_bytes == concurrent_bytes &&
           sequential_transfers == concurrent_transfers;
  }
};

std::uint64_t TotalBytes(const sim::PlatformCounters& c) {
  return c.h2d_bytes + c.d2h_bytes + c.p2p_bytes;
}
std::uint64_t TotalTransfers(const sim::PlatformCounters& c) {
  return c.h2d_transfers + c.d2h_transfers + c.p2p_transfers;
}

/// Isolated baseline: the classic one-shot path on a fresh platform.
sim::PlatformCounters IsolatedRun(const std::string& app, int gpus) {
  auto platform = sim::MakeSupercomputerNode(4);
  if (app == "md") {
    const apps::MdInput input = apps::MakeMdInput(512, 12);
    std::vector<float> force;
    return apps::RunMdAcc(input, *platform, gpus, &force).counters;
  }
  if (app == "kmeans") {
    const apps::KmeansInput input = apps::MakeKmeansInput(800, 4, 4, 7);
    apps::KmeansResult result;
    return apps::RunKmeansAcc(input, *platform, gpus, &result).counters;
  }
  if (app == "bfs") {
    const apps::BfsInput input = apps::MakeBfsInput(1000, 4);
    std::vector<std::int32_t> cost;
    return apps::RunBfsAcc(input, *platform, gpus, &cost).counters;
  }
  const apps::SpmvInput input = apps::MakeSpmvInput(600, 8);
  std::vector<float> y;
  return apps::RunSpmvAcc(input, *platform, gpus, &y).counters;
}

std::vector<IdentityRow> MeasureBillingIdentity() {
  struct JobSpec {
    std::string app;
    int gpus;
  };
  const std::vector<JobSpec> specs = {
      {"md", 2},  {"kmeans", 2}, {"bfs", 2},
      {"spmv", 2}, {"md", 1},    {"spmv", 1},
  };

  std::vector<IdentityRow> rows;
  for (const JobSpec& spec : specs) {
    IdentityRow row;
    row.app = spec.app;
    row.gpus = spec.gpus;
    const sim::PlatformCounters baseline = IsolatedRun(spec.app, spec.gpus);
    row.sequential_bytes = TotalBytes(baseline);
    row.sequential_transfers = TotalTransfers(baseline);
    rows.push_back(row);
  }

  // Concurrent: every job in flight at once on one shared 4-GPU platform.
  auto platform = sim::MakeSupercomputerNode(4);
  service::AccService::Config config;
  config.platform = platform.get();
  config.workers = 3;
  service::AccService service(config);
  std::vector<int> ids;
  for (const JobSpec& spec : specs) {
    service::AppJobOptions options;
    options.app = spec.app;
    options.gpus = spec.gpus;
    const int id = service.Submit(service::MakeAppJob(options));
    if (id < 0) {
      std::cerr << "bench_serve_saturation: identity job rejected\n";
      std::exit(1);
    }
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const service::JobResult result = service.Wait(ids[i]);
    if (result.state != service::JobState::kDone) {
      std::cerr << "bench_serve_saturation: job failed: " << result.error
                << "\n";
      std::exit(1);
    }
    rows[i].concurrent_bytes = TotalBytes(result.report.counters);
    rows[i].concurrent_transfers = TotalTransfers(result.report.counters);
  }
  return rows;
}

std::string ToJson(const std::vector<SaturationRow>& saturation,
                   const std::vector<IdentityRow>& identity, bool ok) {
  bench::JsonValue sat_rows = bench::JsonValue::Array();
  for (const SaturationRow& r : saturation) {
    sat_rows.Push(bench::JsonValue::Object()
                      .Set("gpus", r.gpus)
                      .Set("jobs", r.jobs)
                      .Set("cold_jobs_per_sec", r.cold_jobs_per_sec)
                      .Set("warm_jobs_per_sec", r.warm_jobs_per_sec)
                      .Set("warm_over_cold", r.WarmOverCold()));
  }
  bench::JsonValue identity_rows = bench::JsonValue::Array();
  for (const IdentityRow& r : identity) {
    identity_rows.Push(bench::JsonValue::Object()
                           .Set("app", r.app)
                           .Set("gpus", r.gpus)
                           .Set("sequential_bytes", r.sequential_bytes)
                           .Set("concurrent_bytes", r.concurrent_bytes)
                           .Set("sequential_transfers", r.sequential_transfers)
                           .Set("concurrent_transfers", r.concurrent_transfers)
                           .Set("identical", r.Identical()));
  }
  return bench::JsonValue::Object()
             .Set("saturation", std::move(sat_rows))
             .Set("billing_identity", std::move(identity_rows))
             .Set("ok", ok)
             .Dump() +
         "\n";
}

}  // namespace
}  // namespace accmg

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: bench_serve_saturation [--quick] [--out=<path>]\n";
      return 2;
    }
  }

  const int jobs = quick ? 32 : 64;
  const std::string source = accmg::MakeSyntheticSource(24);

  std::vector<accmg::SaturationRow> saturation;
  for (const int gpus : {2, 4, 8}) {
    saturation.push_back(accmg::MeasureSaturation(gpus, jobs, source));
  }
  const std::vector<accmg::IdentityRow> identity =
      accmg::MeasureBillingIdentity();

  bool ok = true;
  for (const accmg::IdentityRow& row : identity) {
    if (!row.Identical()) {
      std::cerr << "billing identity violated for " << row.app << " on "
                << row.gpus << " GPUs\n";
      ok = false;
    }
  }
  for (const accmg::SaturationRow& row : saturation) {
    if (row.gpus == 2 && row.WarmOverCold() < 3.0) {
      std::cerr << "warm-cache speedup below 3x at 2 GPUs: "
                << row.WarmOverCold() << "\n";
      ok = false;
    }
  }

  const std::string json = accmg::ToJson(saturation, identity, ok);
  std::cout << json;
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    file << json;
  }
  return ok ? 0 : 1;
}
