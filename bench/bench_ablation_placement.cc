// Ablation (Section IV-C): replica-based vs distribution-based placement,
// and the reload-skip cache.
//
// Disabling localaccess forces every array onto the replica policy: device
// memory grows ~linearly with the GPU count and every written distributed
// array turns into dirty-bit traffic. The loader's reload-skip cache is what
// makes iterative apps (kmeans, bfs) pay the big uploads only once.
#include <cstdio>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

void Run() {
  const double scale = BenchScale();
  std::printf("Placement-policy ablation, desktop, 2 GPUs (input scale "
              "%.3g)\n", scale);

  runtime::ExecOptions with_ext;
  runtime::ExecOptions no_ext;
  no_ext.honor_localaccess = false;

  Table table({"app", "policy", "total [ms]", "GPU-GPU [ms]", "user mem",
               "loads", "reloads skipped"});
  for (const AppRunners& app : PaperApps(scale)) {
    for (const auto& [label, options] :
         {std::pair{"distribute", &with_ext}, std::pair{"replicate", &no_ext}}) {
      auto platform = sim::MakeDesktopMachine(2);
      const runtime::RunReport report = app.run(*platform, 2, *options);
      table.AddRow({
          app.name,
          label,
          FormatFixed(report.total_seconds * 1e3, 3),
          FormatFixed(report.time[sim::TimeCategory::kGpuGpu] * 1e3, 3),
          FormatBytes(report.peak_user_bytes),
          std::to_string(report.loader.loads_performed),
          std::to_string(report.loader.loads_skipped),
      });
    }
  }
  table.Print("Replica vs distribution placement (localaccess honoured vs "
              "ignored)");
  std::printf(
      "\nExpected: distribution needs less user memory and less traffic for "
      "md/kmeans;\nthe skipped-reload column shows the loader cache at work "
      "on iterative apps.\n");
}

}  // namespace
}  // namespace accmg::bench

int main() { accmg::bench::Run(); }
