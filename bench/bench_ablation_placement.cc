// Ablation (Section IV-C): replica-based vs distribution-based placement,
// and the reload-skip cache.
//
// Disabling localaccess forces every array onto the replica policy: device
// memory grows ~linearly with the GPU count and every written distributed
// array turns into dirty-bit traffic. The loader's reload-skip cache is what
// makes iterative apps (kmeans, bfs) pay the big uploads only once.
//
// Usage: bench_ablation_placement [--json=FILE]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

int Run(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=FILE]\n", argv[0]);
      return 2;
    }
  }
  const double scale = BenchScale();
  std::printf("Placement-policy ablation, desktop, 2 GPUs (input scale "
              "%.3g)\n", scale);

  runtime::ExecOptions with_ext;
  runtime::ExecOptions no_ext;
  no_ext.honor_localaccess = false;

  Table table({"app", "policy", "total [ms]", "GPU-GPU [ms]", "user mem",
               "loads", "reloads skipped"});
  JsonValue rows = JsonValue::Array();
  for (const AppRunners& app : PaperApps(scale)) {
    for (const auto& [label, options] :
         {std::pair{"distribute", &with_ext}, std::pair{"replicate", &no_ext}}) {
      auto platform = sim::MakeDesktopMachine(2);
      const runtime::RunReport report = app.run(*platform, 2, *options);
      table.AddRow({
          app.name,
          label,
          FormatFixed(report.total_seconds * 1e3, 3),
          FormatFixed(report.time[sim::TimeCategory::kGpuGpu] * 1e3, 3),
          FormatBytes(report.peak_user_bytes),
          std::to_string(report.loader.loads_performed),
          std::to_string(report.loader.loads_skipped),
      });
      rows.Push(JsonValue::Object()
                    .Set("app", app.name)
                    .Set("policy", label)
                    .Set("total_s", report.total_seconds)
                    .Set("gpu_gpu_s", report.time[sim::TimeCategory::kGpuGpu])
                    .Set("peak_user_bytes", report.peak_user_bytes)
                    .Set("loads", report.loader.loads_performed)
                    .Set("reloads_skipped", report.loader.loads_skipped));
    }
  }
  table.Print("Replica vs distribution placement (localaccess honoured vs "
              "ignored)");
  std::printf(
      "\nExpected: distribution needs less user memory and less traffic for "
      "md/kmeans;\nthe skipped-reload column shows the loader cache at work "
      "on iterative apps.\n");
  if (!json_path.empty() && !WriteJsonFile(json_path, rows)) return 1;
  return 0;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Run(argc, argv); }
