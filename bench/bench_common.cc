#include "bench/bench_common.h"

#include <cstdio>

#include "common/error.h"

namespace accmg::bench {

std::vector<MachineConfig> Machines() {
  return {
      MachineConfig{"Desktop (1x Core i7, 2x Tesla C2075)", 2,
                    [](int gpus) { return sim::MakeDesktopMachine(gpus); }},
      MachineConfig{"Supercomputer node (2x Xeon, 3x Tesla M2050)", 3,
                    [](int gpus) { return sim::MakeSupercomputerNode(gpus); }},
  };
}

std::vector<AppRunners> PaperApps(double scale,
                                  const translator::CompileOptions& copts) {
  std::vector<AppRunners> apps;

  {
    auto input = std::make_shared<apps::MdInput>(apps::MakePaperMdInput(scale));
    apps.push_back(AppRunners{
        "md", [input, copts](sim::Platform& platform, int gpus,
                             const runtime::ExecOptions& options) {
          std::vector<float> force;
          if (gpus == 0) return apps::RunMdOpenMp(*input, platform, &force);
          if (gpus == -1) return apps::RunMdCuda(*input, platform, &force);
          return apps::RunMdAcc(*input, platform, gpus, &force, options,
                                copts);
        }});
  }
  {
    auto input = std::make_shared<apps::KmeansInput>(
        apps::MakePaperKmeansInput(scale));
    apps.push_back(AppRunners{
        "kmeans", [input, copts](sim::Platform& platform, int gpus,
                                 const runtime::ExecOptions& options) {
          apps::KmeansResult result;
          if (gpus == 0) {
            return apps::RunKmeansOpenMp(*input, platform, &result);
          }
          if (gpus == -1) {
            return apps::RunKmeansCuda(*input, platform, &result);
          }
          return apps::RunKmeansAcc(*input, platform, gpus, &result, options,
                                    copts);
        }});
  }
  {
    auto input =
        std::make_shared<apps::BfsInput>(apps::MakePaperBfsInput(scale));
    apps.push_back(AppRunners{
        "bfs", [input, copts](sim::Platform& platform, int gpus,
                              const runtime::ExecOptions& options) {
          std::vector<std::int32_t> cost;
          if (gpus == 0) return apps::RunBfsOpenMp(*input, platform, &cost);
          if (gpus == -1) return apps::RunBfsCuda(*input, platform, &cost);
          return apps::RunBfsAcc(*input, platform, gpus, &cost, options,
                                 copts);
        }});
  }
  return apps;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue::JsonValue(double d) : kind_(Kind::kNumber) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", d);
  text_ = buf;
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  ACCMG_REQUIRE(kind_ == Kind::kObject, "Set on a non-object JsonValue");
  keys_.push_back(std::move(key));
  children_.push_back(std::move(value));
  return *this;
}

JsonValue& JsonValue::Push(JsonValue value) {
  ACCMG_REQUIRE(kind_ == Kind::kArray, "Push on a non-array JsonValue");
  children_.push_back(std::move(value));
  return *this;
}

void JsonValue::AppendInline(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kNumber:
      *out += text_;
      break;
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(text_);
      *out += '"';
      break;
    case Kind::kArray:
      *out += '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) *out += ", ";
        children_[i].AppendInline(out);
      }
      *out += ']';
      break;
    case Kind::kObject:
      *out += '{';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += '"';
        *out += JsonEscape(keys_[i]);
        *out += "\": ";
        children_[i].AppendInline(out);
      }
      *out += '}';
      break;
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  AppendPretty(&out, 0);
  return out;
}

void JsonValue::AppendPretty(std::string* out, int indent) const {
  // A container holding other containers spreads one entry per line (the
  // diff-friendly row-per-line layout of the committed artifacts); a flat
  // row of scalars renders inline.
  const bool is_container = kind_ == Kind::kArray || kind_ == Kind::kObject;
  bool has_container_child = false;
  for (const JsonValue& child : children_) {
    if (child.kind_ == Kind::kArray || child.kind_ == Kind::kObject) {
      has_container_child = true;
      break;
    }
  }
  if (!is_container || children_.empty() || !has_container_child) {
    AppendInline(out);
    return;
  }
  const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
  *out += kind_ == Kind::kArray ? "[\n" : "{\n";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    *out += pad;
    if (kind_ == Kind::kObject) {
      *out += '"';
      *out += JsonEscape(keys_[i]);
      *out += "\": ";
    }
    children_[i].AppendPretty(out, indent + 2);
    if (i + 1 < children_.size()) *out += ',';
    *out += '\n';
  }
  *out += std::string(static_cast<std::size_t>(indent), ' ');
  *out += kind_ == Kind::kArray ? ']' : '}';
}

bool WriteJsonFile(const std::string& path, const JsonValue& root) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  const std::string text = root.Dump() + "\n";
  std::fputs(text.c_str(), file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

std::vector<AppRunners> StencilApps(double scale,
                                    const translator::CompileOptions& copts) {
  std::vector<AppRunners> apps;
  {
    const int rows = std::max(48, static_cast<int>(768 * scale));
    auto input = std::make_shared<apps::Heat2dInput>(
        apps::MakeHeat2dInput(rows, 512, 10));
    apps.push_back(AppRunners{
        "heat2d", [input, copts](sim::Platform& platform, int gpus,
                                 const runtime::ExecOptions& options) {
          std::vector<float> u;
          if (gpus == 0) return apps::RunHeat2dOpenMp(*input, platform, &u);
          if (gpus == -1) return apps::RunHeat2dCuda(*input, platform, &u);
          return apps::RunHeat2dAcc(*input, platform, gpus, &u, options,
                                    copts);
        }});
  }
  {
    const int rows = std::max(48, static_cast<int>(640 * scale));
    auto input = std::make_shared<apps::LatticeInput>(
        apps::MakeLatticeInput(rows, 384, 12));
    apps.push_back(AppRunners{
        "lattice", [input, copts](sim::Platform& platform, int gpus,
                                  const runtime::ExecOptions& options) {
          std::vector<float> phi;
          if (gpus == 0) return apps::RunLatticeOpenMp(*input, platform, &phi);
          if (gpus == -1) return apps::RunLatticeCuda(*input, platform, &phi);
          return apps::RunLatticeAcc(*input, platform, gpus, &phi, options,
                                     copts);
        }});
  }
  return apps;
}

bool ParseOptLevelFlag(const std::string& arg,
                       translator::CompileOptions* copts) {
  if (arg.rfind("--opt-level=", 0) != 0) return false;
  const int level = std::atoi(arg.c_str() + 12);
  if (level < 0 || level > 2) {
    std::fprintf(stderr, "bad flag '%s': expected --opt-level={0,1,2}\n",
                 arg.c_str());
    std::exit(2);
  }
  copts->opt_level = level;
  return true;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ACCMG_REQUIRE(cells.size() == headers_.size(),
                "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::Print(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = headers_.size() * 2;
  for (auto w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace accmg::bench
