#include "bench/bench_common.h"

#include <cstdio>

#include "common/error.h"

namespace accmg::bench {

std::vector<MachineConfig> Machines() {
  return {
      MachineConfig{"Desktop (1x Core i7, 2x Tesla C2075)", 2,
                    [](int gpus) { return sim::MakeDesktopMachine(gpus); }},
      MachineConfig{"Supercomputer node (2x Xeon, 3x Tesla M2050)", 3,
                    [](int gpus) { return sim::MakeSupercomputerNode(gpus); }},
  };
}

std::vector<AppRunners> PaperApps(double scale,
                                  const translator::CompileOptions& copts) {
  std::vector<AppRunners> apps;

  {
    auto input = std::make_shared<apps::MdInput>(apps::MakePaperMdInput(scale));
    apps.push_back(AppRunners{
        "md", [input, copts](sim::Platform& platform, int gpus,
                             const runtime::ExecOptions& options) {
          std::vector<float> force;
          if (gpus == 0) return apps::RunMdOpenMp(*input, platform, &force);
          if (gpus == -1) return apps::RunMdCuda(*input, platform, &force);
          return apps::RunMdAcc(*input, platform, gpus, &force, options,
                                copts);
        }});
  }
  {
    auto input = std::make_shared<apps::KmeansInput>(
        apps::MakePaperKmeansInput(scale));
    apps.push_back(AppRunners{
        "kmeans", [input, copts](sim::Platform& platform, int gpus,
                                 const runtime::ExecOptions& options) {
          apps::KmeansResult result;
          if (gpus == 0) {
            return apps::RunKmeansOpenMp(*input, platform, &result);
          }
          if (gpus == -1) {
            return apps::RunKmeansCuda(*input, platform, &result);
          }
          return apps::RunKmeansAcc(*input, platform, gpus, &result, options,
                                    copts);
        }});
  }
  {
    auto input =
        std::make_shared<apps::BfsInput>(apps::MakePaperBfsInput(scale));
    apps.push_back(AppRunners{
        "bfs", [input, copts](sim::Platform& platform, int gpus,
                              const runtime::ExecOptions& options) {
          std::vector<std::int32_t> cost;
          if (gpus == 0) return apps::RunBfsOpenMp(*input, platform, &cost);
          if (gpus == -1) return apps::RunBfsCuda(*input, platform, &cost);
          return apps::RunBfsAcc(*input, platform, gpus, &cost, options,
                                 copts);
        }});
  }
  return apps;
}

bool ParseOptLevelFlag(const std::string& arg,
                       translator::CompileOptions* copts) {
  if (arg.rfind("--opt-level=", 0) != 0) return false;
  const int level = std::atoi(arg.c_str() + 12);
  if (level < 0 || level > 2) {
    std::fprintf(stderr, "bad flag '%s': expected --opt-level={0,1,2}\n",
                 arg.c_str());
    std::exit(2);
  }
  copts->opt_level = level;
  return true;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ACCMG_REQUIRE(cells.size() == headers_.size(),
                "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::Print(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = headers_.size() * 2;
  for (auto w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace accmg::bench
