// Ablation (Section IV-D1): sweep of the second-level dirty-bit chunk size.
//
// The paper picks 1 MB "experimentally". Small chunks transfer less clean
// data but pay per-transfer latency for many chunks; large chunks amortize
// latency but ship more clean bytes. The sweet spot for BFS-like scattered
// writes sits near the paper's choice.
//
// Usage: bench_ablation_chunksize [--json=FILE]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

int Run(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=FILE]\n", argv[0]);
      return 2;
    }
  }
  const double scale = BenchScale();
  std::printf("Dirty-bit chunk-size ablation on bfs, desktop, 2 GPUs "
              "(input scale %.3g)\n", scale);

  auto apps = PaperApps(scale);
  const AppRunners& bfs = apps[2];

  Table table({"chunk", "GPU-GPU [ms]", "chunks sent", "chunks skipped",
               "total [ms]"});
  JsonValue rows = JsonValue::Array();
  for (std::size_t chunk : {std::size_t{4} << 10, std::size_t{64} << 10,
                            std::size_t{256} << 10, std::size_t{1} << 20,
                            std::size_t{4} << 20, std::size_t{16} << 20}) {
    runtime::ExecOptions options;
    options.dirty_chunk_bytes = chunk;
    auto platform = sim::MakeDesktopMachine(2);
    const runtime::RunReport report = bfs.run(*platform, 2, options);
    table.AddRow({
        FormatBytes(chunk),
        FormatFixed(report.time[sim::TimeCategory::kGpuGpu] * 1e3, 3),
        std::to_string(report.comm.dirty_chunks_sent),
        std::to_string(report.comm.clean_chunks_skipped),
        FormatFixed(report.total_seconds * 1e3, 3),
    });
    rows.Push(JsonValue::Object()
                  .Set("chunk_bytes", chunk)
                  .Set("gpu_gpu_s", report.time[sim::TimeCategory::kGpuGpu])
                  .Set("chunks_sent", report.comm.dirty_chunks_sent)
                  .Set("chunks_skipped", report.comm.clean_chunks_skipped)
                  .Set("total_s", report.total_seconds));
  }
  table.Print("Two-level dirty-bit chunk size sweep (paper choice: 1MB)");
  if (!json_path.empty() && !WriteJsonFile(json_path, rows)) return 1;
  return 0;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Run(argc, argv); }
