// Ablation (Section IV-D1): sweep of the second-level dirty-bit chunk size.
//
// The paper picks 1 MB "experimentally". Small chunks transfer less clean
// data but pay per-transfer latency for many chunks; large chunks amortize
// latency but ship more clean bytes. The sweet spot for BFS-like scattered
// writes sits near the paper's choice.
//
// Usage: bench_ablation_chunksize [--json=FILE]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

int Run(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=FILE]\n", argv[0]);
      return 2;
    }
  }
  const double scale = BenchScale();
  std::printf("Dirty-bit chunk-size ablation on bfs, desktop, 2 GPUs "
              "(input scale %.3g)\n", scale);

  auto apps = PaperApps(scale);
  const AppRunners& bfs = apps[2];

  Table table({"chunk", "GPU-GPU [ms]", "chunks sent", "chunks skipped",
               "total [ms]"});
  std::string json = "[\n";
  bool first_row = true;
  for (std::size_t chunk : {std::size_t{4} << 10, std::size_t{64} << 10,
                            std::size_t{256} << 10, std::size_t{1} << 20,
                            std::size_t{4} << 20, std::size_t{16} << 20}) {
    runtime::ExecOptions options;
    options.dirty_chunk_bytes = chunk;
    auto platform = sim::MakeDesktopMachine(2);
    const runtime::RunReport report = bfs.run(*platform, 2, options);
    table.AddRow({
        FormatBytes(chunk),
        FormatFixed(report.time[sim::TimeCategory::kGpuGpu] * 1e3, 3),
        std::to_string(report.comm.dirty_chunks_sent),
        std::to_string(report.comm.clean_chunks_skipped),
        FormatFixed(report.total_seconds * 1e3, 3),
    });
    char row[256];
    std::snprintf(row, sizeof(row),
                  "  {\"chunk_bytes\": %zu, \"gpu_gpu_s\": %.9g, "
                  "\"chunks_sent\": %llu, \"chunks_skipped\": %llu, "
                  "\"total_s\": %.9g}",
                  chunk, report.time[sim::TimeCategory::kGpuGpu],
                  static_cast<unsigned long long>(
                      report.comm.dirty_chunks_sent),
                  static_cast<unsigned long long>(
                      report.comm.clean_chunks_skipped),
                  report.total_seconds);
    json += (first_row ? "" : ",\n");
    json += row;
    first_row = false;
  }
  json += "\n]\n";
  table.Print("Two-level dirty-bit chunk size sweep (paper choice: 1MB)");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Run(argc, argv); }
