// Ablation (Section IV-D1): sweep of the second-level dirty-bit chunk size.
//
// The paper picks 1 MB "experimentally". Small chunks transfer less clean
// data but pay per-transfer latency for many chunks; large chunks amortize
// latency but ship more clean bytes. The sweet spot for BFS-like scattered
// writes sits near the paper's choice.
#include <cstdio>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

void Run() {
  const double scale = BenchScale();
  std::printf("Dirty-bit chunk-size ablation on bfs, desktop, 2 GPUs "
              "(input scale %.3g)\n", scale);

  auto apps = PaperApps(scale);
  const AppRunners& bfs = apps[2];

  Table table({"chunk", "GPU-GPU [ms]", "chunks sent", "chunks skipped",
               "total [ms]"});
  for (std::size_t chunk : {std::size_t{4} << 10, std::size_t{64} << 10,
                            std::size_t{256} << 10, std::size_t{1} << 20,
                            std::size_t{4} << 20, std::size_t{16} << 20}) {
    runtime::ExecOptions options;
    options.dirty_chunk_bytes = chunk;
    auto platform = sim::MakeDesktopMachine(2);
    const runtime::RunReport report = bfs.run(*platform, 2, options);
    table.AddRow({
        FormatBytes(chunk),
        FormatFixed(report.time[sim::TimeCategory::kGpuGpu] * 1e3, 3),
        std::to_string(report.comm.dirty_chunks_sent),
        std::to_string(report.comm.clean_chunks_skipped),
        FormatFixed(report.total_seconds * 1e3, 3),
    });
  }
  table.Print("Two-level dirty-bit chunk size sweep (paper choice: 1MB)");
}

}  // namespace
}  // namespace accmg::bench

int main() { accmg::bench::Run(); }
