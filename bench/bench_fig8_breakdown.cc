// Figure 8: breakdown of the proposal's execution time into GPU-GPU,
// CPU-GPU and KERNELS, normalized to the total of the 1-GPU execution.
//
// Paper result shape: CPU-GPU transfer is what prevents linear speedup;
// MD has zero GPU-GPU time; KMEANS a small GPU-GPU share; BFS on 2-3 GPUs
// is dominated by GPU-GPU traffic (especially on the supercomputer node).
#include <cstdio>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

void Run() {
  const double scale = BenchScale();
  std::printf("Fig. 8 reproduction (input scale %.3g)\n", scale);

  const runtime::ExecOptions defaults;
  for (const MachineConfig& machine : Machines()) {
    auto apps = PaperApps(scale);
    Table table({"app", "gpus", "GPU-GPU", "CPU-GPU", "KERNELS", "total"});
    for (const AppRunners& app : apps) {
      double one_gpu_total = 0;
      for (int gpus = 1; gpus <= machine.max_gpus; ++gpus) {
        auto platform = machine.make(machine.max_gpus);
        const runtime::RunReport report = app.run(*platform, gpus, defaults);
        if (gpus == 1) one_gpu_total = report.total_seconds;
        const double norm = one_gpu_total;
        table.AddRow({
            app.name,
            std::to_string(gpus),
            FormatFixed(report.time[sim::TimeCategory::kGpuGpu] / norm, 3),
            FormatFixed(report.time[sim::TimeCategory::kCpuGpu] / norm, 3),
            FormatFixed(report.time[sim::TimeCategory::kKernel] / norm, 3),
            FormatFixed(report.total_seconds / norm, 3),
        });
      }
    }
    table.Print("Execution-time breakdown (normalized to 1-GPU total) — " +
                machine.name);
  }
  std::printf(
      "\nPaper shape: KERNELS shrinks ~1/gpus; CPU-GPU stays ~flat and "
      "limits speedup;\nmd has zero GPU-GPU; kmeans a small GPU-GPU share; "
      "bfs 2-3 GPU runs are GPU-GPU dominated.\n");
}

}  // namespace
}  // namespace accmg::bench

int main() { accmg::bench::Run(); }
