// Figure 8: breakdown of the proposal's execution time into GPU-GPU,
// CPU-GPU and KERNELS, normalized to the total of the 1-GPU execution.
//
// Paper result shape: CPU-GPU transfer is what prevents linear speedup;
// MD has zero GPU-GPU time; KMEANS a small GPU-GPU share; BFS on 2-3 GPUs
// is dominated by GPU-GPU traffic (especially on the supercomputer node).
//
// Usage:
//   bench_fig8_breakdown                       the Fig. 8 table (default)
//   bench_fig8_breakdown --trace-out=FILE      trace-capture mode: runs the
//       three paper apps plus a scatter kernel (which exercises the
//       write-miss path) on 2 GPUs of the desktop machine with the tracer
//       on, writes Chrome-trace JSON to FILE, prints the span summary
//       table, and cross-checks the span counts against the runtime's
//       counters (exit code 1 on mismatch)
//   bench_fig8_breakdown --metrics             also dump the unified
//       metrics registry at the end (combines with either mode)
//   bench_fig8_breakdown --opt-level={0,1,2}   translator mid-end level for
//       the proposal runs (default 1; combines with either mode)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace accmg::bench {
namespace {

void RunFig8Table(const translator::CompileOptions& copts) {
  const double scale = BenchScale();
  std::printf("Fig. 8 reproduction (input scale %.3g; opt-level %d)\n", scale,
              copts.opt_level);

  const runtime::ExecOptions defaults;
  for (const MachineConfig& machine : Machines()) {
    auto apps = PaperApps(scale, copts);
    // The 2-D row-block stencils ride the same breakdown; their GPU-GPU
    // share is the per-sweep halo-row exchange.
    for (auto& app : StencilApps(scale, copts)) {
      apps.push_back(std::move(app));
    }
    Table table({"app", "gpus", "GPU-GPU", "CPU-GPU", "KERNELS", "total"});
    for (const AppRunners& app : apps) {
      double one_gpu_total = 0;
      for (int gpus = 1; gpus <= machine.max_gpus; ++gpus) {
        auto platform = machine.make(machine.max_gpus);
        const runtime::RunReport report = app.run(*platform, gpus, defaults);
        if (gpus == 1) one_gpu_total = report.total_seconds;
        const double norm = one_gpu_total;
        table.AddRow({
            app.name,
            std::to_string(gpus),
            FormatFixed(report.time[sim::TimeCategory::kGpuGpu] / norm, 3),
            FormatFixed(report.time[sim::TimeCategory::kCpuGpu] / norm, 3),
            FormatFixed(report.time[sim::TimeCategory::kKernel] / norm, 3),
            FormatFixed(report.total_seconds / norm, 3),
        });
      }
    }
    table.Print("Execution-time breakdown (normalized to 1-GPU total) — " +
                machine.name);
  }
  std::printf(
      "\nPaper shape: KERNELS shrinks ~1/gpus; CPU-GPU stays ~flat and "
      "limits speedup;\nmd has zero GPU-GPU; kmeans a small GPU-GPU share; "
      "bfs 2-3 GPU runs are GPU-GPU dominated.\n");
}

/// A distributed-array kernel whose write indices the translator cannot
/// prove local, so the write-miss machinery runs — guaranteeing the trace
/// contains miss-flush spans (the paper apps never miss).
constexpr char kScatterSource[] = R"(
void scatter(int n, int* perm, int* src, int* dst) {
  #pragma acc data copyin(perm[0:n], src[0:n]) copy(dst[0:n])
  {
    #pragma acc localaccess(src: stride(1)) (dst: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      dst[perm[i]] = src[i] * 3;
    }
  }
}
)";

runtime::RunReport RunScatter(sim::Platform& platform, int gpus) {
  const runtime::AccProgram program =
      runtime::AccProgram::FromSource("scatter", kScatterSource);
  constexpr int n = 1 << 16;
  std::vector<std::int32_t> perm(n), src(n), dst(n, -1);
  for (int i = 0; i < n; ++i) {
    perm[i] = (i * 7919) % n;
    src[i] = i;
  }
  runtime::ProgramRunner runner(
      program, runtime::RunConfig{.platform = &platform, .num_gpus = gpus});
  runner.BindArray("perm", perm.data(), ir::ValType::kI32, n);
  runner.BindArray("src", src.data(), ir::ValType::kI32, n);
  runner.BindArray("dst", dst.data(), ir::ValType::kI32, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  return runner.Run("scatter");
}

int RunTraceCapture(const std::string& trace_out,
                    const translator::CompileOptions& copts) {
  // Keep the traced run small so the ring buffer retains every span — the
  // count cross-check below is only exact with zero drops.
  const double scale = std::min(BenchScale(), 0.05);
  constexpr int kGpus = 2;
  std::printf("Trace capture: desktop machine, %d GPUs, input scale %.3g\n",
              kGpus, scale);

  auto& tracer = trace::Tracer::Global();
  tracer.set_enabled(true);
  tracer.Clear();
  metrics::Registry::Global().ResetAll();

  runtime::ExecOptions options;
  options.trace = true;

  // Accumulate the runtime's own statistics across the traced runs; the
  // trace must agree with these within rounding.
  std::uint64_t kernel_launches = 0;
  std::uint64_t transfers = 0;
  std::uint64_t dirty_chunks_sent = 0;
  std::uint64_t halo_refreshes = 0;
  std::uint64_t miss_records = 0;
  std::uint64_t offload_runs = 0;

  auto absorb = [&](const runtime::RunReport& report) {
    kernel_launches += report.counters.kernel_launches;
    transfers += report.counters.h2d_transfers +
                 report.counters.d2h_transfers + report.counters.p2p_transfers;
    dirty_chunks_sent += report.comm.dirty_chunks_sent;
    halo_refreshes += report.comm.halo_refreshes;
    miss_records += report.comm.miss_records_replayed;
    offload_runs += report.kernel_executions;
  };

  for (const AppRunners& app : PaperApps(scale, copts)) {
    auto platform = sim::MakeDesktopMachine(kGpus);
    std::printf("  tracing %s ...\n", app.name.c_str());
    absorb(app.run(*platform, kGpus, options));
  }
  {
    auto platform = sim::MakeDesktopMachine(kGpus);
    std::printf("  tracing scatter (write-miss path) ...\n");
    absorb(RunScatter(*platform, kGpus));
  }

  if (!tracer.WriteChromeTraceFile(trace_out)) {
    std::fprintf(stderr, "cannot write trace to '%s'\n", trace_out.c_str());
    return 1;
  }
  std::printf("\nWrote Chrome-trace JSON to %s "
              "(open in chrome://tracing or ui.perfetto.dev)\n\n",
              trace_out.c_str());
  std::fputs(tracer.SummaryTable().c_str(), stdout);

  // --- Cross-check the trace against the runtime counters. ---
  // Every LaunchKernel records exactly one sim span in the kernel category;
  // every billed transfer records exactly one sim span in its phase's
  // category; each dirty chunk / halo refresh is exactly one p2p span in
  // its category.
  std::uint64_t span_kernels = 0;
  std::uint64_t span_transfer_like = 0;
  std::uint64_t span_dirty_p2p = 0;
  std::uint64_t span_halo_p2p = 0;
  std::uint64_t span_miss_flush = 0;
  int max_device = -1;
  for (const trace::Event& event : tracer.Snapshot()) {
    if (event.timeline != trace::Timeline::kSim) continue;
    max_device = std::max(max_device, event.device);
    if (event.category == trace::category::kKernel) {
      ++span_kernels;
    } else {
      ++span_transfer_like;
      const bool p2p = event.name.rfind("p2p", 0) == 0;
      if (p2p && event.category == trace::category::kDirtyMerge) {
        ++span_dirty_p2p;
      }
      if (p2p && event.category == trace::category::kHalo) ++span_halo_p2p;
      if (event.category == trace::category::kMissFlush) ++span_miss_flush;
    }
  }

  bool ok = true;
  auto check = [&](const char* what, std::uint64_t traced,
                   std::uint64_t counted) {
    const bool match = traced == counted;
    std::printf("%-44s  trace=%8llu  counters=%8llu  %s\n", what,
                static_cast<unsigned long long>(traced),
                static_cast<unsigned long long>(counted),
                match ? "OK" : "MISMATCH");
    ok &= match;
  };
  std::printf("\nTrace vs runtime-counter consistency (offloads=%llu):\n",
              static_cast<unsigned long long>(offload_runs));
  check("kernel spans == kernel launches", span_kernels, kernel_launches);
  check("transfer-like spans == h2d+d2h+p2p transfers", span_transfer_like,
        transfers);
  check("dirty-merge p2p spans == dirty chunks sent", span_dirty_p2p,
        dirty_chunks_sent);
  check("halo p2p spans == halo refreshes", span_halo_p2p, halo_refreshes);
  if (span_miss_flush == 0 || miss_records == 0) {
    std::printf("%-44s  trace=%8llu  records=%9llu  %s\n",
                "miss-flush spans present iff records replayed",
                static_cast<unsigned long long>(span_miss_flush),
                static_cast<unsigned long long>(miss_records), "MISMATCH");
    ok = false;
  } else {
    std::printf("%-44s  trace=%8llu  records=%9llu  OK\n",
                "miss-flush spans present iff records replayed",
                static_cast<unsigned long long>(span_miss_flush),
                static_cast<unsigned long long>(miss_records));
  }
  if (max_device < 1) {
    std::printf("expected spans on >= 2 devices, saw max device id %d\n",
                max_device);
    ok = false;
  }
  if (const std::uint64_t dropped = tracer.dropped(); dropped > 0) {
    std::printf("ring buffer dropped %llu events — counts not comparable; "
                "lower ACCMG_BENCH_SCALE\n",
                static_cast<unsigned long long>(dropped));
    ok = false;
  }
  std::printf("consistency: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}

int Run(int argc, char** argv) {
  std::string trace_out;
  bool print_metrics = false;
  translator::CompileOptions copts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (ParseOptLevelFlag(arg, &copts)) {
      // handled
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig8_breakdown [--trace-out=FILE] "
                   "[--metrics] [--opt-level={0,1,2}]\n");
      return 2;
    }
  }

  int status = 0;
  if (trace_out.empty()) {
    RunFig8Table(copts);
  } else {
    status = RunTraceCapture(trace_out, copts);
  }
  if (print_metrics) {
    std::ostringstream text;
    metrics::Registry::Global().WriteText(text);
    std::printf("\nUnified metrics registry:\n%s", text.str().c_str());
  }
  return status;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Run(argc, argv); }
