// Microbenchmarks (google-benchmark) for the infrastructure layers: the IR
// interpreter, the frontend, the simulated-clock scheduler and the
// communication manager's dirty-element merge. These measure *real wall
// time* of this implementation (unlike the figure benches, which report
// simulated time).
#include <benchmark/benchmark.h>

#include <numeric>

#include "frontend/parser.h"
#include "frontend/sema.h"
#include "ir/builder.h"
#include "ir/exec.h"
#include "runtime/comm_manager.h"
#include "runtime/data_loader.h"
#include "sim/platform.h"
#include "translator/offload.h"

namespace accmg {
namespace {

// --- IR interpreter throughput ---------------------------------------------

ir::KernelIR BuildSaxpyKernel() {
  ir::KernelBuilder builder("saxpy");
  const int x = builder.AddArray("x", ir::ValType::kF32);
  const int y = builder.AddArray("y", ir::ValType::kF32);
  const int a = builder.AddScalar("a", ir::ValType::kF32);
  const int xv = builder.Load(x, builder.thread_id_reg());
  const int prod = builder.Binary(ir::Opcode::kMulF, a, xv);
  const int rp = builder.Unary(ir::Opcode::kRoundF32, prod);
  const int yv = builder.Load(y, builder.thread_id_reg());
  const int sum = builder.Binary(ir::Opcode::kAddF, rp, yv);
  const int rs = builder.Unary(ir::Opcode::kRoundF32, sum);
  builder.Store(y, builder.thread_id_reg(), rs);
  return builder.Build();
}

void BM_InterpreterSaxpy(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  static const ir::KernelIR kernel = BuildSaxpyKernel();
  std::vector<float> x(static_cast<std::size_t>(n), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(n), 2.0f);

  ir::KernelExec exec(kernel);
  for (auto& binding : exec.bindings) {
    binding.lo = 0;
    binding.hi = n;
    binding.write_lo = 0;
    binding.write_hi = n;
    binding.logical_size = n;
  }
  exec.bindings[0].data = reinterpret_cast<std::byte*>(x.data());
  exec.bindings[1].data = reinterpret_cast<std::byte*>(y.data());
  exec.scalar_values[0] = ir::EncodeScalar(ir::ValType::kF32, 1.5, 0);

  for (auto _ : state) {
    sim::KernelStats stats;
    exec.Execute(0, n, stats);
    benchmark::DoNotOptimize(stats.instructions);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InterpreterSaxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// --- frontend throughput -----------------------------------------------------

void BM_ParseAndAnalyze(benchmark::State& state) {
  const std::string source = R"(
void kmeans_like(int n, int k, int f, float* data, float* cent, int* mem) {
  #pragma acc data copyin(data[0:n*f]) copy(cent[0:k*f], mem[0:n])
  {
    #pragma acc localaccess(data: stride(f)) (mem: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      int best = 0;
      float bd = 3.0e38f;
      for (int c = 0; c < k; c++) {
        float d = 0.0f;
        for (int j = 0; j < f; j++) {
          float diff = data[i * f + j] - cent[c * f + j];
          d += diff * diff;
        }
        if (d < bd) { bd = d; best = c; }
      }
      mem[i] = best;
    }
  }
}
)";
  for (auto _ : state) {
    frontend::SourceBuffer buffer("bench.c", source);
    auto program = frontend::ParseAndAnalyze(buffer);
    benchmark::DoNotOptimize(program->functions.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_ParseAndAnalyze);

void BM_TranslateToIr(benchmark::State& state) {
  const std::string source = R"(
void f(int n, float* a, float* b) {
  #pragma acc localaccess(a: stride(1), left(1), right(1)) (b: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    int l = i - 1;
    if (l < 0) { l = 0; }
    b[i] = 0.5f * (a[i] + a[l]);
  }
}
)";
  frontend::SourceBuffer buffer("bench.c", source);
  auto program = frontend::ParseAndAnalyze(buffer);
  for (auto _ : state) {
    translator::CompiledProgram compiled = translator::Compile(*program);
    benchmark::DoNotOptimize(compiled.functions[0].offloads.size());
  }
}
BENCHMARK(BM_TranslateToIr);

// --- simulated clock ----------------------------------------------------------

void BM_ClockScheduling(benchmark::State& state) {
  sim::SimClock clock;
  std::vector<sim::SimClock::Resource> resources;
  for (int i = 0; i < 8; ++i) {
    resources.push_back(clock.NewResource("r" + std::to_string(i)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    clock.Schedule(resources[i++ & 7], 1e-6);
    if ((i & 1023) == 0) clock.Barrier(sim::TimeCategory::kOther);
  }
  benchmark::DoNotOptimize(clock.Now());
}
BENCHMARK(BM_ClockScheduling);

// --- dirty propagation ---------------------------------------------------------

void BM_DirtyPropagation(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const double dirty_fraction = 0.01;
  auto platform = sim::MakeDesktopMachine(2);
  runtime::ExecOptions options;
  runtime::DataLoader loader(*platform, options, {0, 1});
  runtime::CommManager comm(*platform, options, {0, 1});

  std::vector<std::int32_t> host(static_cast<std::size_t>(n), 0);
  runtime::ManagedArray array("a", ir::ValType::kI32, n, host.data(), 2);
  runtime::ArrayRequirement req;
  req.array = &array;
  req.written = true;
  req.dirty_tracked = true;
  req.read_ranges.assign(2, runtime::Range{0, n});
  req.own_ranges.assign(2, runtime::Range{0, n});
  loader.EnsurePlacement(req);

  const auto stride = static_cast<std::int64_t>(1.0 / dirty_fraction);
  for (auto _ : state) {
    state.PauseTiming();
    runtime::DeviceShard& shard = array.shard(0);
    for (std::int64_t i = 0; i < n; i += stride) {
      shard.dirty1->bytes()[static_cast<std::size_t>(i)] = std::byte{1};
      shard.dirty2->bytes()[static_cast<std::size_t>(i / shard.chunk_elems)] =
          std::byte{1};
    }
    state.ResumeTiming();
    comm.PropagateReplicated(array);
  }
  state.SetItemsProcessed(state.iterations() * (n / stride));
}
BENCHMARK(BM_DirtyPropagation)->Arg(1 << 18)->Arg(1 << 22);

}  // namespace
}  // namespace accmg

BENCHMARK_MAIN();
