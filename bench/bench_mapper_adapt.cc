// Adaptive measured-throughput task mapper (ExecOptions::mapper) on a
// skewed heterogeneous platform: equal division leaves the fast GPUs idle
// waiting for the slow ones at every offload barrier, while the measured
// mapper resplits each offload's iteration range proportionally to the
// per-device throughput it observed on the previous execution.
//
// The platform is a node whose devices alternate between a full-rate Tesla
// C2075 and derated variants (1/2 and 1/3 of the instruction rate and
// bandwidth) — the kind of mixed-generation table the paper's equal split
// (Section IV-B2) has no answer to. Both 2-D row-block stencil apps run in
// both mapper modes at 2 and 4 GPUs; the bench FAILS (exit 1) unless the
// measured mapper strictly beats equal division on every skewed
// configuration AND the two modes produce bit-identical outputs (the
// stencils are pure element stores, so the split must not change results).
//
// Usage: bench_mapper_adapt [--json=FILE] [--opt-level={0,1,2}]
//   (results/bench_mapper_adapt.json is the committed artifact)
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/metrics.h"
#include "sim/cost_model.h"
#include "sim/topology.h"

namespace accmg::bench {
namespace {

/// Derates a device spec to `factor` of its compute rate and bandwidth.
sim::DeviceSpec Derate(sim::DeviceSpec spec, double factor) {
  spec.name += " @" + FormatFixed(factor, 2);
  spec.instr_per_sec *= factor;
  spec.mem_bandwidth_bps *= factor;
  return spec;
}

/// Node with alternating full / half / full / third-rate devices.
std::unique_ptr<sim::Platform> MakeSkewedNode(int num_gpus) {
  const double factors[] = {1.0, 0.5, 1.0, 1.0 / 3.0};
  std::vector<sim::DeviceSpec> gpus;
  for (int g = 0; g < num_gpus; ++g) {
    gpus.push_back(Derate(sim::TeslaC2075(), factors[g % 4]));
  }
  return std::make_unique<sim::Platform>(
      std::move(gpus), sim::SupercomputerTopology(num_gpus),
      sim::CoreI7Desktop());
}

struct StencilCase {
  std::string name;
  std::function<runtime::RunReport(sim::Platform&, int,
                                   const runtime::ExecOptions&,
                                   std::vector<float>*)>
      run;
};

int Run(int argc, char** argv) {
  std::string json_path;
  translator::CompileOptions copts;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (!ParseOptLevelFlag(argv[i], &copts)) {
      std::fprintf(stderr,
                   "usage: %s [--json=FILE] [--opt-level={0,1,2}]\n",
                   argv[0]);
      return 2;
    }
  }
  const double scale = BenchScale();
  std::printf("Measured-throughput mapper vs equal division, skewed node "
              "(input scale %.3g; opt-level %d)\n",
              scale, copts.opt_level);

  // Enough sweeps that the one equal-division measuring execution per
  // offload amortizes away and the steady-state skewed split dominates.
  const int heat_rows = std::max(64, static_cast<int>(768 * scale));
  const auto heat_input = apps::MakeHeat2dInput(heat_rows, 512, 48);
  const int lattice_rows = std::max(64, static_cast<int>(640 * scale));
  const auto lattice_input = apps::MakeLatticeInput(lattice_rows, 384, 48);

  std::vector<StencilCase> cases;
  cases.push_back(StencilCase{
      "heat2d", [&](sim::Platform& platform, int gpus,
                    const runtime::ExecOptions& options,
                    std::vector<float>* out) {
        return apps::RunHeat2dAcc(heat_input, platform, gpus, out, options,
                                  copts);
      }});
  cases.push_back(StencilCase{
      "lattice", [&](sim::Platform& platform, int gpus,
                     const runtime::ExecOptions& options,
                     std::vector<float>* out) {
        return apps::RunLatticeAcc(lattice_input, platform, gpus, out,
                                   options, copts);
      }});

  metrics::Counter& rebalances =
      metrics::Registry::Global().counter("mapper.rebalances");

  Table table({"app", "gpus", "mapper", "total [ms]", "kernels [ms]",
               "rebalances", "speedup vs equal"});
  JsonValue rows = JsonValue::Array();
  int failures = 0;
  for (const StencilCase& app : cases) {
    for (const int gpus : {2, 4}) {
      runtime::RunReport reports[2];
      std::vector<float> outputs[2];
      std::uint64_t mode_rebalances[2] = {0, 0};
      for (const int mode : {0, 1}) {
        runtime::ExecOptions options;
        options.mapper = mode == 0 ? runtime::TaskMapper::kEqual
                                   : runtime::TaskMapper::kMeasured;
        auto platform = MakeSkewedNode(gpus);
        const std::uint64_t before = rebalances.value();
        reports[mode] = app.run(*platform, gpus, options, &outputs[mode]);
        mode_rebalances[mode] = rebalances.value() - before;
      }
      if (outputs[0] != outputs[1]) {
        std::printf("%s gpus=%d: RESULT MISMATCH between mapper modes!\n",
                    app.name.c_str(), gpus);
        ++failures;
      }
      const double equal_s = reports[0].total_seconds;
      const double measured_s = reports[1].total_seconds;
      const double speedup = measured_s > 0 ? equal_s / measured_s : 0;
      if (!(measured_s < equal_s)) {
        std::printf("%s gpus=%d: measured (%.6f s) did not beat equal "
                    "(%.6f s)!\n",
                    app.name.c_str(), gpus, measured_s, equal_s);
        ++failures;
      }
      for (const int mode : {0, 1}) {
        const runtime::RunReport& r = reports[mode];
        table.AddRow({
            app.name,
            std::to_string(gpus),
            mode == 0 ? "equal" : "measured",
            FormatFixed(r.total_seconds * 1e3, 3),
            FormatFixed(r.time[sim::TimeCategory::kKernel] * 1e3, 3),
            std::to_string(mode_rebalances[mode]),
            mode == 0 ? "1.00" : FormatFixed(speedup, 2) + "x",
        });
        rows.Push(
            JsonValue::Object()
                .Set("app", app.name)
                .Set("gpus", gpus)
                .Set("mapper", mode == 0 ? "equal" : "measured")
                .Set("total_s", r.total_seconds)
                .Set("kernels_s", r.time[sim::TimeCategory::kKernel])
                .Set("gpu_gpu_s", r.time[sim::TimeCategory::kGpuGpu])
                .Set("rebalances", mode_rebalances[mode])
                .Set("speedup_vs_equal", mode == 0 ? 1.0 : speedup));
      }
    }
  }

  table.Print("Equal vs measured-throughput task mapping, skewed node");
  std::printf(
      "\nExpected shape: the measured rows rebalance once after the first "
      "execution of\neach offload and then hold a stable skewed split; "
      "total time drops towards the\nweighted optimum instead of being "
      "pinned to the slowest device, with\nbit-identical outputs.\n");

  if (!json_path.empty() && !WriteJsonFile(json_path, rows)) ++failures;
  if (failures > 0) {
    std::fprintf(stderr, "bench_mapper_adapt: %d check(s) failed\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Run(argc, argv); }
