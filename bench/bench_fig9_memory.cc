// Figure 9: device memory usage of the proposal — user data vs runtime
// ("System") memory — normalized to the total device memory of the 1-GPU
// execution.
//
// Paper result shape: User memory does NOT grow proportionally to the GPU
// count because localaccess lets the loader distribute the big arrays;
// System memory (dirty bits, miss buffers) grows with communication needs
// and stays under ~30% even for bfs.
#include <cstdio>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

void Run() {
  const double scale = BenchScale();
  std::printf("Fig. 9 reproduction (input scale %.3g)\n", scale);

  const runtime::ExecOptions defaults;
  for (const MachineConfig& machine : Machines()) {
    auto apps = PaperApps(scale);
    Table table({"app", "gpus", "User", "System", "total", "naive-replica"});
    for (const AppRunners& app : apps) {
      double one_gpu_user = 0;
      for (int gpus = 1; gpus <= machine.max_gpus; ++gpus) {
        auto platform = machine.make(machine.max_gpus);
        const runtime::RunReport report = app.run(*platform, gpus, defaults);
        if (gpus == 1) {
          one_gpu_user = static_cast<double>(report.peak_user_bytes +
                                             report.peak_system_bytes);
        }
        const double user =
            static_cast<double>(report.peak_user_bytes) / one_gpu_user;
        const double system =
            static_cast<double>(report.peak_system_bytes) / one_gpu_user;
        table.AddRow({
            app.name,
            std::to_string(gpus),
            FormatFixed(user, 3),
            FormatFixed(system, 3),
            FormatFixed(user + system, 3),
            FormatFixed(static_cast<double>(gpus), 1),  // replicate-everything
        });
      }
    }
    table.Print("Device memory (normalized to 1-GPU total) — " +
                machine.name);
  }
  std::printf(
      "\nPaper shape: User stays well below the gpus-x growth of naive "
      "full replication;\nSystem is largest for bfs but below ~30%% of the "
      "1-GPU footprint.\n");
}

}  // namespace
}  // namespace accmg::bench

int main() { accmg::bench::Run(); }
