// Wall-clock benchmark for the coherence hot paths, comparing the optimized
// implementations (word-level dirty scanning + span coalescing + thread-pool
// fan-out, sorted miss replay, pairwise-tree reduction) against the serial
// element-at-a-time references in src/runtime/comm_reference.h.
//
// Both versions bill identical simulated transfers (enforced by
// tests/comm_equivalence_test.cc); this bench measures only the host-side
// wall-clock gap. Results are emitted as machine-readable JSON:
//   [{"phase": "dirty-merge", "gpus": 4, "density": 0.25,
//     "elements": 1048576, "reference_ms": ..., "optimized_ms": ...,
//     "speedup": ...}, ...]
//
// Usage: bench_comm_hotpath [--quick] [--out=<path>]
//   --quick  smaller arrays and fewer repetitions (CI smoke job)
//   --out    write the JSON array to <path> (always printed to stdout too)
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "runtime/comm_manager.h"
#include "runtime/comm_reference.h"
#include "runtime/data_loader.h"
#include "runtime/managed_array.h"
#include "runtime/reduction.h"
#include "sim/platform.h"

namespace accmg::runtime {
namespace {

struct Result {
  std::string phase;
  int gpus = 0;
  double density = 0.0;
  std::int64_t elements = 0;
  double reference_ms = 0.0;
  double optimized_ms = 0.0;

  double Speedup() const {
    return optimized_ms > 0.0 ? reference_ms / optimized_ms : 0.0;
  }
};

/// A simulated machine plus one managed array, mirroring the setup the
/// executor produces before each hot path runs.
struct Harness {
  std::unique_ptr<sim::Platform> platform;
  ExecOptions options;
  std::vector<int> devices;
  std::vector<std::byte> host;
  std::unique_ptr<ManagedArray> array;
  std::unique_ptr<DataLoader> loader;

  Harness(int gpus, ir::ValType type, std::int64_t count) {
    platform = sim::MakeDesktopMachine(gpus);
    for (int d = 0; d < gpus; ++d) devices.push_back(d);
    host.resize(static_cast<std::size_t>(count) * ir::ValTypeSize(type));
    array =
        std::make_unique<ManagedArray>("a", type, count, host.data(), gpus);
    loader = std::make_unique<DataLoader>(*platform, options, devices);
  }

  void LoadReplicated(bool dirty_tracked) {
    ArrayRequirement req;
    req.array = array.get();
    req.written = true;
    req.dirty_tracked = dirty_tracked;
    req.read_ranges.assign(devices.size(), Range{0, array->count()});
    req.own_ranges.assign(devices.size(), Range{0, array->count()});
    loader->EnsurePlacement(req);
  }

  void LoadDistributed() {
    ArrayRequirement req;
    req.array = array.get();
    req.written = true;
    req.miss_checked = true;
    req.distributed = true;
    const std::int64_t n = array->count();
    const auto gpus = static_cast<std::int64_t>(devices.size());
    for (std::int64_t g = 0; g < gpus; ++g) {
      const Range own{n * g / gpus, n * (g + 1) / gpus};
      req.read_ranges.push_back(own);
      req.own_ranges.push_back(own);
    }
    loader->EnsurePlacement(req);
  }
};

/// Byte-level snapshot of every shard's data + dirty state + miss records,
/// so each timed repetition starts from the identical painted pattern
/// without re-running the (slow, random) painting loop.
struct ShardSnapshot {
  std::vector<std::vector<std::byte>> data;
  std::vector<std::vector<std::byte>> dirty1;
  std::vector<std::vector<std::byte>> dirty2;
  std::vector<std::vector<ir::WriteMissRecord>> miss;

  static ShardSnapshot Capture(Harness& h) {
    ShardSnapshot s;
    for (int device : h.devices) {
      const DeviceShard& shard = h.array->shard(device);
      auto span_copy = [](const sim::DeviceBuffer* buf) {
        std::vector<std::byte> bytes;
        if (buf != nullptr) {
          bytes.assign(buf->bytes().begin(), buf->bytes().end());
        }
        return bytes;
      };
      s.data.push_back(span_copy(shard.data.get()));
      s.dirty1.push_back(span_copy(shard.dirty1.get()));
      s.dirty2.push_back(span_copy(shard.dirty2.get()));
      s.miss.push_back(shard.miss.records);
    }
    return s;
  }

  void Restore(Harness& h) const {
    for (std::size_t d = 0; d < h.devices.size(); ++d) {
      DeviceShard& shard = h.array->shard(h.devices[d]);
      auto restore = [](const std::vector<std::byte>& bytes,
                        sim::DeviceBuffer* buf) {
        if (buf != nullptr && !bytes.empty()) {
          std::memcpy(buf->bytes().data(), bytes.data(), bytes.size());
        }
      };
      restore(data[d], shard.data.get());
      restore(dirty1[d], shard.dirty1.get());
      restore(dirty2[d], shard.dirty2.get());
      shard.miss.records = miss[d];
    }
  }
};

/// Paints the dirty pattern an instrumented kernel would leave behind:
/// contiguous runs of written elements (kernels march through iteration
/// ranges) separated by clean gaps sized so the overall fraction of dirty
/// elements is `density`. Each device gets a different random phase so the
/// devices' runs partially overlap.
void PaintDirtyPattern(Harness& h, std::uint64_t seed, double density) {
  Rng rng(seed);
  const std::int64_t n = h.array->count();
  const std::size_t elem = h.array->elem_size();
  const std::int64_t mean_run = 64;
  const auto mean_gap = static_cast<std::int64_t>(
      static_cast<double>(mean_run) * (1.0 - density) / density);
  for (int device : h.devices) {
    DeviceShard& shard = h.array->shard(device);
    std::byte* data = shard.data->bytes().data();
    std::byte* dirty1 = shard.dirty1->bytes().data();
    std::byte* dirty2 = shard.dirty2->bytes().data();
    std::int64_t i = rng.NextInt(0, 2 * mean_run);
    while (i < n) {
      const std::int64_t run = rng.NextInt(1, 2 * mean_run - 1);
      const std::int64_t hi = std::min<std::int64_t>(n, i + run);
      for (std::int64_t j = i; j < hi; ++j) {
        const std::uint64_t value = rng.NextU64();
        std::memcpy(data + static_cast<std::size_t>(j) * elem, &value, elem);
        dirty1[j] = std::byte{1};
        dirty2[j / shard.chunk_elems] = std::byte{1};
      }
      i = hi + 1 + rng.NextInt(0, std::max<std::int64_t>(1, 2 * mean_gap));
    }
  }
}

/// Fills each device's miss buffer the way an instrumented kernel would:
/// runs of consecutive indices (the kernel walks its iteration range and
/// records every store that lands outside its owned segment), with the
/// occasional duplicate write to the same element.
void FillMissRecords(Harness& h, std::uint64_t seed, int records_per_gpu) {
  Rng rng(seed);
  const std::int64_t n = h.array->count();
  for (int device : h.devices) {
    DeviceShard& shard = h.array->shard(device);
    shard.miss.records.reserve(static_cast<std::size_t>(records_per_gpu));
    int count = 0;
    while (count < records_per_gpu) {
      const std::int64_t start = rng.NextInt(0, n - 1);
      const std::int64_t run = std::min<std::int64_t>(
          {rng.NextInt(8, 256), records_per_gpu - count, n - start});
      for (std::int64_t j = 0; j < run; ++j) {
        shard.miss.records.push_back(
            ir::WriteMissRecord{start + j, rng.NextU64()});
        // Sprinkle duplicate writes: the later record must win on replay.
        if ((count + j) % 61 == 0) {
          shard.miss.records.push_back(
              ir::WriteMissRecord{start + j, rng.NextU64()});
        }
      }
      count += static_cast<int>(run);
    }
  }
}

template <typename Fn>
double TimedReps(int reps, const ShardSnapshot& snapshot, Harness& h,
                 Fn&& run) {
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    snapshot.Restore(h);
    Stopwatch watch;
    run();
    total += watch.ElapsedSeconds();
  }
  return total * 1000.0 / reps;
}

Result BenchDirtyMerge(int gpus, std::int64_t elements, double density,
                       int reps) {
  Result result{"dirty-merge", gpus, density, elements, 0.0, 0.0};

  Harness opt(gpus, ir::ValType::kI32, elements);
  opt.LoadReplicated(/*dirty_tracked=*/true);
  PaintDirtyPattern(opt, 0xD117B175 + gpus, density);
  const ShardSnapshot snap_opt = ShardSnapshot::Capture(opt);
  CommManager comm(*opt.platform, opt.options, opt.devices);
  result.optimized_ms = TimedReps(reps, snap_opt, opt, [&] {
    comm.PropagateReplicated(*opt.array);
  });

  Harness ref(gpus, ir::ValType::kI32, elements);
  ref.LoadReplicated(/*dirty_tracked=*/true);
  PaintDirtyPattern(ref, 0xD117B175 + gpus, density);
  const ShardSnapshot snap_ref = ShardSnapshot::Capture(ref);
  result.reference_ms = TimedReps(reps, snap_ref, ref, [&] {
    reference::PropagateReplicated(*ref.platform, ref.devices, *ref.array);
  });
  return result;
}

Result BenchMissReplay(int gpus, std::int64_t elements, int records_per_gpu,
                       int reps) {
  Result result{"miss-replay", gpus,
                static_cast<double>(records_per_gpu), elements, 0.0, 0.0};

  Harness opt(gpus, ir::ValType::kI64, elements);
  opt.LoadDistributed();
  FillMissRecords(opt, 0x3155F1A5 + gpus, records_per_gpu);
  const ShardSnapshot snap_opt = ShardSnapshot::Capture(opt);
  CommManager comm(*opt.platform, opt.options, opt.devices);
  result.optimized_ms = TimedReps(reps, snap_opt, opt, [&] {
    comm.ReplayWriteMisses(*opt.array);
  });

  Harness ref(gpus, ir::ValType::kI64, elements);
  ref.LoadDistributed();
  FillMissRecords(ref, 0x3155F1A5 + gpus, records_per_gpu);
  const ShardSnapshot snap_ref = ShardSnapshot::Capture(ref);
  result.reference_ms = TimedReps(reps, snap_ref, ref, [&] {
    reference::ReplayWriteMisses(*ref.platform, ref.devices, *ref.array);
  });
  return result;
}

Result BenchReduction(int gpus, std::int64_t elements, int reps) {
  Result result{"reduction", gpus, 1.0, elements, 0.0, 0.0};

  auto make_partials = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<std::uint64_t>> partials(
        static_cast<std::size_t>(gpus));
    for (auto& p : partials) {
      p.resize(static_cast<std::size_t>(elements));
      for (auto& v : p) {
        const double d = rng.NextDouble(-100.0, 100.0);
        std::memcpy(&v, &d, sizeof(v));
      }
    }
    return partials;
  };
  auto views = [](const std::vector<std::vector<std::uint64_t>>& p) {
    std::vector<const std::vector<std::uint64_t>*> v;
    for (const auto& partial : p) v.push_back(&partial);
    return v;
  };

  Harness opt(gpus, ir::ValType::kF64, elements);
  opt.LoadReplicated(/*dirty_tracked=*/false);
  const auto partials_opt = make_partials(0x4ED0C710);
  const ShardSnapshot snap_opt = ShardSnapshot::Capture(opt);
  result.optimized_ms = TimedReps(reps, snap_opt, opt, [&] {
    CombineArrayReduction(*opt.platform, opt.devices, *opt.array,
                          ir::RedOp::kAdd, ir::ValType::kF64, 0, elements,
                          views(partials_opt));
  });

  Harness ref(gpus, ir::ValType::kF64, elements);
  ref.LoadReplicated(/*dirty_tracked=*/false);
  const auto partials_ref = make_partials(0x4ED0C710);
  const ShardSnapshot snap_ref = ShardSnapshot::Capture(ref);
  result.reference_ms = TimedReps(reps, snap_ref, ref, [&] {
    reference::CombineArrayReduction(*ref.platform, ref.devices, *ref.array,
                                     ir::RedOp::kAdd, ir::ValType::kF64, 0,
                                     elements, views(partials_ref));
  });
  return result;
}

std::string ToJson(const std::vector<Result>& results) {
  bench::JsonValue rows = bench::JsonValue::Array();
  for (const Result& r : results) {
    rows.Push(bench::JsonValue::Object()
                  .Set("phase", r.phase)
                  .Set("gpus", r.gpus)
                  .Set("density", r.density)
                  .Set("elements", r.elements)
                  .Set("reference_ms", r.reference_ms)
                  .Set("optimized_ms", r.optimized_ms)
                  .Set("speedup", r.Speedup()));
  }
  return rows.Dump() + "\n";
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_comm_hotpath [--quick] [--out=<path>]\n";
      return 2;
    }
  }

  const std::int64_t elements = quick ? (1 << 17) : (1 << 20);
  const int reps = quick ? 2 : 5;
  const std::vector<double> densities =
      quick ? std::vector<double>{0.25} : std::vector<double>{0.05, 0.25, 0.6};

  std::vector<Result> results;
  for (int gpus : {2, 4}) {
    for (double density : densities) {
      results.push_back(BenchDirtyMerge(gpus, elements, density, reps));
      std::cerr << "dirty-merge gpus=" << gpus << " density=" << density
                << " ref=" << results.back().reference_ms
                << "ms opt=" << results.back().optimized_ms
                << "ms speedup=" << results.back().Speedup() << "x\n";
    }
  }
  for (int gpus : {2, 4}) {
    const int records = quick ? 20000 : 200000;
    results.push_back(BenchMissReplay(gpus, elements, records, reps));
    std::cerr << "miss-replay gpus=" << gpus << " records=" << records
              << " ref=" << results.back().reference_ms
              << "ms opt=" << results.back().optimized_ms
              << "ms speedup=" << results.back().Speedup() << "x\n";
  }
  for (int gpus : {2, 4}) {
    results.push_back(BenchReduction(gpus, elements / 2, reps));
    std::cerr << "reduction gpus=" << gpus
              << " ref=" << results.back().reference_ms
              << "ms opt=" << results.back().optimized_ms
              << "ms speedup=" << results.back().Speedup() << "x\n";
  }

  const std::string json = ToJson(results);
  std::cout << json;
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    if (!file) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    file << json;
    std::cerr << "wrote " << out_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace accmg::runtime

int main(int argc, char** argv) { return accmg::runtime::Main(argc, argv); }
