// Chaos-recovery benchmark for the fault-injection layer (sim/fault.h) and
// the recovery machinery around it (runtime/recovery.h, service workers):
// what does surviving faults cost, and how much goodput is left under them?
//
// A fixed stream of builtin-app jobs runs through one AccService per fault
// level — clean baseline, transient-only, transient+stalls, and
// transient+device-loss — on the same seeded plans every run, so numbers
// are comparable across commits. Per level the JSON reports:
//
//   - goodput_jobs_per_sec: jobs that finished kDone per wall second (the
//     paper-facing number: throughput that survives the chaos);
//   - done/failed split and the recovery counters booked while the level
//     ran (retries, degraded device-shrinks, terminal failures, injected);
//   - mean_sim_s over done jobs and sim_overhead_vs_clean, the factor the
//     simulated time grew versus the clean baseline — retry re-execution
//     plus backoff, the "recovery latency" of the level.
//
// The process exits nonzero when the accounting identity
// fault.injected == recovery.retries + recovery.degraded +
// recovery.failures breaks or when a faulted level completes zero jobs —
// either means recovery regressed, and CI's perf-smoke treats it as a
// failure.
//
// Usage: bench_chaos_recovery [--quick] [--out=<path>]
//   --quick  fewer jobs per level (CI smoke)
//   --out    write the JSON object to <path> (always printed to stdout)
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "service/builtin_apps.h"
#include "service/service.h"
#include "sim/fault.h"
#include "sim/platform.h"

namespace accmg {
namespace {

struct Accounting {
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failures = 0;
  std::uint64_t stalls = 0;

  static Accounting Snapshot() {
    auto& reg = metrics::Registry::Global();
    Accounting s;
    s.injected = reg.counter("fault.injected").value();
    s.retries = reg.counter("recovery.retries").value();
    s.degraded = reg.counter("recovery.degraded").value();
    s.failures = reg.counter("recovery.failures").value();
    s.stalls = reg.counter("fault.stalls").value();
    return s;
  }

  Accounting DeltaSince(const Accounting& base) const {
    return Accounting{injected - base.injected, retries - base.retries,
                      degraded - base.degraded, failures - base.failures,
                      stalls - base.stalls};
  }

  bool IdentityHolds() const {
    return injected == retries + degraded + failures;
  }
};

struct LevelResult {
  std::string level;
  std::string plan;
  int jobs = 0;
  int done = 0;
  int failed = 0;
  Accounting delta;
  double wall_s = 0;
  double mean_sim_s = 0;  ///< over done jobs
  double goodput_jobs_per_sec = 0;
};

LevelResult RunLevel(const std::string& level, const std::string& plan,
                     int jobs) {
  LevelResult result;
  result.level = level;
  result.plan = plan;
  result.jobs = jobs;

  auto platform = sim::MakeSupercomputerNode(4);
  if (!plan.empty()) platform->ArmFaults(sim::FaultPlan::Parse(plan));

  service::AccService::Config config;
  config.platform = platform.get();
  config.workers = 2;
  config.job_retries = 3;
  config.default_deadline_ms = 60000;  // hang backstop; never the fast path
  service::AccService service(config);

  const Accounting before = Accounting::Snapshot();
  Stopwatch wall;

  const char* apps[] = {"md", "kmeans", "bfs", "spmv"};
  std::vector<int> ids;
  for (int j = 0; j < jobs; ++j) {
    service::AppJobOptions options;
    options.app = apps[j % 4];
    options.gpus = 1 + j % 2;  // alternate 1- and 2-GPU leases
    const int id = service.Submit(service::MakeAppJob(options));
    if (id < 0) {
      std::cerr << "bench_chaos_recovery: job rejected at level " << level
                << "\n";
      std::exit(1);
    }
    ids.push_back(id);
  }

  double done_sim_s = 0;
  for (const int id : ids) {
    const service::JobResult job = service.Wait(id);
    if (job.state == service::JobState::kDone) {
      ++result.done;
      done_sim_s += job.report.total_seconds;
    } else {
      ++result.failed;
    }
  }

  result.wall_s = wall.ElapsedSeconds();
  result.delta = Accounting::Snapshot().DeltaSince(before);
  result.mean_sim_s = result.done > 0 ? done_sim_s / result.done : 0;
  result.goodput_jobs_per_sec =
      result.wall_s > 0 ? result.done / result.wall_s : 0;
  return result;
}

std::string ToJson(const std::vector<LevelResult>& levels, double clean_sim_s,
                   bool ok) {
  bench::JsonValue level_rows = bench::JsonValue::Array();
  for (const LevelResult& r : levels) {
    const double overhead =
        clean_sim_s > 0 && r.mean_sim_s > 0 ? r.mean_sim_s / clean_sim_s : 0;
    level_rows.Push(bench::JsonValue::Object()
                        .Set("level", r.level)
                        .Set("plan", r.plan)
                        .Set("jobs", r.jobs)
                        .Set("done", r.done)
                        .Set("failed", r.failed)
                        .Set("injected", r.delta.injected)
                        .Set("retries", r.delta.retries)
                        .Set("degraded", r.delta.degraded)
                        .Set("failures", r.delta.failures)
                        .Set("stalls", r.delta.stalls)
                        .Set("wall_s", r.wall_s)
                        .Set("goodput_jobs_per_sec", r.goodput_jobs_per_sec)
                        .Set("mean_sim_s", r.mean_sim_s)
                        .Set("sim_overhead_vs_clean", overhead)
                        .Set("identity_ok", r.delta.IdentityHolds()));
  }
  return bench::JsonValue::Object()
             .Set("levels", std::move(level_rows))
             .Set("ok", ok)
             .Dump() +
         "\n";
}

}  // namespace
}  // namespace accmg

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: bench_chaos_recovery [--quick] [--out=<path>]\n";
      return 2;
    }
  }

  const int jobs = quick ? 8 : 32;
  const std::vector<std::pair<std::string, std::string>> plans = {
      {"clean", ""},
      {"transient", "seed=101,kernel=0.02,transfer=0.02"},
      {"stalls", "seed=102,kernel=0.02,transfer=0.02,stall=0.05"},
      {"device-loss", "seed=103,kernel=0.03,transfer=0.03,death=0.01"},
  };

  std::vector<accmg::LevelResult> levels;
  for (const auto& [level, plan] : plans) {
    levels.push_back(accmg::RunLevel(level, plan, jobs));
  }

  bool ok = true;
  const double clean_sim_s = levels.front().mean_sim_s;
  for (const accmg::LevelResult& r : levels) {
    if (!r.delta.IdentityHolds()) {
      std::cerr << "bench_chaos_recovery: accounting identity broke at level "
                << r.level << "\n";
      ok = false;
    }
    if (r.done == 0) {
      std::cerr << "bench_chaos_recovery: zero goodput at level " << r.level
                << "\n";
      ok = false;
    }
  }

  const std::string json = accmg::ToJson(levels, clean_sim_s, ok);
  std::cout << json;
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    file << json;
  }
  return ok ? 0 : 1;
}
