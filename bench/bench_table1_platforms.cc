// Table I: the two evaluation machines, as modeled by the virtual platform.
#include <cstdio>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

void Run() {
  Table table({"machine", "CPU", "GPUs", "GPU memory", "host link",
               "peer link", "IO groups"});
  for (const MachineConfig& machine : Machines()) {
    auto platform = machine.make(machine.max_gpus);
    const auto& topo = platform->topology();
    table.AddRow({
        machine.name,
        platform->host_spec().name + " (" +
            std::to_string(platform->host_spec().threads) + " threads)",
        std::to_string(platform->num_devices()) + "x " +
            platform->device(0).spec().name,
        FormatBytes(platform->device(0).spec().memory_bytes),
        FormatFixed(topo.host_link.bandwidth_bps / 1e9, 1) + " GB/s",
        FormatFixed(topo.peer_link.bandwidth_bps / 1e9, 1) + " GB/s",
        std::to_string(topo.num_io_groups()),
    });
  }
  table.Print("Table I — machine settings (simulated)");
}

}  // namespace
}  // namespace accmg::bench

int main() { accmg::bench::Run(); }
