// Shared infrastructure for the paper-reproduction benchmarks: workload
// configurations, the version matrix of Fig. 7 (OpenMP / OpenACC-1GPU /
// CUDA-1GPU / Proposal-1..3GPU), and plain-text table rendering.
//
// Benchmarks report *simulated* time from the platform's analytic cost
// model; absolute numbers are not comparable to the paper's hardware, but
// the relative shape (who wins, by what factor, where communication
// dominates) is the reproduction target. Set ACCMG_BENCH_SCALE (default
// 0.1) to trade fidelity for runtime; 1.0 reproduces the paper's sizes.
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/bfs/bfs.h"
#include "apps/kmeans/kmeans.h"
#include "apps/md/md.h"
#include "common/string_util.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::bench {

inline double BenchScale() {
  if (const char* env = std::getenv("ACCMG_BENCH_SCALE")) {
    return std::atof(env);
  }
  return 0.1;
}

/// The two machines of Table I.
struct MachineConfig {
  std::string name;
  int max_gpus;
  std::function<std::unique_ptr<sim::Platform>(int)> make;
};

std::vector<MachineConfig> Machines();

/// One application hooked into the version matrix.
struct AppRunners {
  std::string name;
  /// Runs the given version; returns the report. gpus==0 means OpenMP,
  /// gpus==-1 means hand-written CUDA on one GPU, gpus>=1 the proposal with
  /// the given runtime options.
  std::function<runtime::RunReport(sim::Platform&, int gpus,
                                   const runtime::ExecOptions&)>
      run;
};

/// The three paper applications at `scale` of the paper's input sizes.
/// `copts` selects the translator optimization level for the proposal runs
/// (gpus >= 1); the OpenMP/CUDA baselines ignore it.
std::vector<AppRunners> PaperApps(double scale,
                                  const translator::CompileOptions& copts = {});

/// Parses "--opt-level=N" into `copts->opt_level`. Returns true when the
/// flag was consumed; false when `arg` is not an --opt-level flag. Exits
/// with status 2 on a value outside {0, 1, 2}.
bool ParseOptLevelFlag(const std::string& arg,
                       translator::CompileOptions* copts);

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace accmg::bench
