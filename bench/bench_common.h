// Shared infrastructure for the paper-reproduction benchmarks: workload
// configurations, the version matrix of Fig. 7 (OpenMP / OpenACC-1GPU /
// CUDA-1GPU / Proposal-1..3GPU), and plain-text table rendering.
//
// Benchmarks report *simulated* time from the platform's analytic cost
// model; absolute numbers are not comparable to the paper's hardware, but
// the relative shape (who wins, by what factor, where communication
// dominates) is the reproduction target. Set ACCMG_BENCH_SCALE (default
// 0.1) to trade fidelity for runtime; 1.0 reproduces the paper's sizes.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "apps/bfs/bfs.h"
#include "apps/heat2d/heat2d.h"
#include "apps/kmeans/kmeans.h"
#include "apps/lattice/lattice.h"
#include "apps/md/md.h"
#include "common/string_util.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::bench {

inline double BenchScale() {
  if (const char* env = std::getenv("ACCMG_BENCH_SCALE")) {
    return std::atof(env);
  }
  return 0.1;
}

/// The two machines of Table I.
struct MachineConfig {
  std::string name;
  int max_gpus;
  std::function<std::unique_ptr<sim::Platform>(int)> make;
};

std::vector<MachineConfig> Machines();

/// One application hooked into the version matrix.
struct AppRunners {
  std::string name;
  /// Runs the given version; returns the report. gpus==0 means OpenMP,
  /// gpus==-1 means hand-written CUDA on one GPU, gpus>=1 the proposal with
  /// the given runtime options.
  std::function<runtime::RunReport(sim::Platform&, int gpus,
                                   const runtime::ExecOptions&)>
      run;
};

/// The three paper applications at `scale` of the paper's input sizes.
/// `copts` selects the translator optimization level for the proposal runs
/// (gpus >= 1); the OpenMP/CUDA baselines ignore it.
std::vector<AppRunners> PaperApps(double scale,
                                  const translator::CompileOptions& copts = {});

/// The two 2-D row-block stencil applications added alongside the paper's
/// three (heat2d 5-point Jacobi and the lattice phi^4 relaxation), wired
/// into the same version matrix. Kept out of PaperApps so the Table II pins
/// and per-index references (e.g. apps[2] == bfs) stay stable.
std::vector<AppRunners> StencilApps(
    double scale, const translator::CompileOptions& copts = {});

/// Parses "--opt-level=N" into `copts->opt_level`. Returns true when the
/// flag was consumed; false when `arg` is not an --opt-level flag. Exits
/// with status 2 on a value outside {0, 1, 2}.
bool ParseOptLevelFlag(const std::string& arg,
                       translator::CompileOptions* copts);

/// Escapes `s` for embedding in a JSON string literal (RFC 8259): quotes,
/// backslashes and control characters. Returns the escaped body without the
/// surrounding quotes.
std::string JsonEscape(const std::string& s);

/// Minimal JSON document builder shared by every benchmark that writes a
/// results/*.json artifact. Strings are escaped and object keys keep their
/// insertion order, so the emitted key order is stable across runs and an
/// app name containing a quote or backslash cannot corrupt the file (the
/// previous per-bench snprintf formats did neither). Arrays render one
/// element per line — the row-per-line layout the committed artifacts use —
/// and everything nested inside a row renders inline.
class JsonValue {
 public:
  static JsonValue Object();
  static JsonValue Array();

  JsonValue() = default;  ///< null
  JsonValue(const char* s) : kind_(Kind::kString), text_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), text_(std::move(s)) {}
  JsonValue(bool b) : kind_(Kind::kNumber), text_(b ? "true" : "false") {}
  JsonValue(double d);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonValue(T v)
      : kind_(Kind::kNumber),
        text_(std::is_signed_v<T>
                  ? std::to_string(static_cast<long long>(v))
                  : std::to_string(static_cast<unsigned long long>(v))) {}

  /// Appends a key/value pair (object) — keys are append-only, which is what
  /// makes the emitted order stable. Returns *this for chaining.
  JsonValue& Set(std::string key, JsonValue value);
  /// Appends an element (array). Returns *this for chaining.
  JsonValue& Push(JsonValue value);

  std::string Dump() const;

 private:
  enum class Kind { kNull, kNumber, kString, kArray, kObject };
  void AppendInline(std::string* out) const;
  void AppendPretty(std::string* out, int indent) const;

  Kind kind_ = Kind::kNull;
  std::string text_;
  std::vector<std::string> keys_;
  std::vector<JsonValue> children_;
};

/// Writes `root.Dump()` plus a trailing newline to `path` and prints
/// "wrote <path>". Returns false (with a message on stderr) when the file
/// cannot be opened.
bool WriteJsonFile(const std::string& path, const JsonValue& root);

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace accmg::bench
