// Figure 7: relative performance normalized to the OpenMP versions.
//
// Paper result shape: every GPU version beats OpenMP except bfs on the
// supercomputer node; the proposal on multiple GPUs beats hand-written CUDA
// on one GPU; best cases ~6.75x (desktop, 2 GPUs) and ~2.95x (node, 3 GPUs).
//
// Usage: bench_fig7_performance [--opt-level={0,1,2}]
// --opt-level selects the translator's mid-end level for the proposal runs
// (docs/ARCHITECTURE.md, "Optimizing mid-end"); default 1.
#include <cstdio>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

int Run(int argc, char** argv) {
  translator::CompileOptions copts;
  for (int i = 1; i < argc; ++i) {
    if (!ParseOptLevelFlag(argv[i], &copts)) {
      std::fprintf(stderr,
                   "usage: bench_fig7_performance [--opt-level={0,1,2}]\n");
      return 2;
    }
  }
  const double scale = BenchScale();
  std::printf("Fig. 7 reproduction (input scale %.3g; opt-level %d; set "
              "ACCMG_BENCH_SCALE=1 for paper-size inputs)\n",
              scale, copts.opt_level);

  const runtime::ExecOptions defaults;
  runtime::ExecOptions no_ext;
  no_ext.honor_localaccess = false;

  for (const MachineConfig& machine : Machines()) {
    auto apps = PaperApps(scale, copts);
    // The 2-D row-block stencils ride the same version matrix.
    for (auto& app : StencilApps(scale, copts)) {
      apps.push_back(std::move(app));
    }
    std::vector<std::string> headers{"app",         "OpenMP",
                                     "ACC(1,noext)", "CUDA(1)"};
    for (int g = 1; g <= machine.max_gpus; ++g) {
      headers.push_back("Proposal(" + std::to_string(g) + ")");
    }
    Table table(headers);

    for (const AppRunners& app : apps) {
      auto baseline = machine.make(machine.max_gpus);
      const double openmp = app.run(*baseline, 0, defaults).total_seconds;

      std::vector<std::string> row{app.name, "1.00"};
      {
        // Stock single-GPU OpenACC compiler: extensions ignored.
        auto p = machine.make(machine.max_gpus);
        row.push_back(
            FormatFixed(openmp / app.run(*p, 1, no_ext).total_seconds, 2));
      }
      {
        auto p = machine.make(machine.max_gpus);
        row.push_back(
            FormatFixed(openmp / app.run(*p, -1, defaults).total_seconds, 2));
      }
      for (int gpus = 1; gpus <= machine.max_gpus; ++gpus) {
        auto p = machine.make(machine.max_gpus);
        row.push_back(FormatFixed(
            openmp / app.run(*p, gpus, defaults).total_seconds, 2));
      }
      table.AddRow(row);
    }
    table.Print("Relative performance vs OpenMP — " + machine.name);
  }
  std::printf(
      "\nPaper shape: all GPU bars > 1 except bfs on the supercomputer "
      "node;\nProposal(2/3) > CUDA(1); peaks ~6.75x (desktop) and ~2.95x "
      "(node).\n");
  return 0;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Run(argc, argv); }
