// Table II: application characteristics — single-GPU device memory usage
// (A), number of parallel loops (B), number of kernel executions (C), and
// arrays with localaccess / arrays used in parallel loops (D).
//
// Paper values: MD 39.8MB/1/1/(2/3); KMEANS 69.2MB/2/74/(2/5);
// BFS 444.9MB/1/10/(2/3).
#include <cstdio>

#include "bench/bench_common.h"
#include "runtime/program.h"

namespace accmg::bench {
namespace {

struct SourceInfo {
  int parallel_loops = 0;
  int localaccess_arrays = 0;
  int total_arrays = 0;
};

SourceInfo AnalyzeSource(const std::string& name, const std::string& source) {
  // Table II counts the paper's per-source-loop characteristics; compile
  // with the mid-end off so offload fusion cannot merge the loops.
  translator::CompileOptions copts;
  copts.opt_level = 0;
  const runtime::AccProgram program =
      runtime::AccProgram::FromSource(name, source, copts);
  SourceInfo info;
  // Count distinct arrays (and the localaccess subset) across the parallel
  // loops of the program, as Table II does.
  std::vector<std::string> seen;
  std::vector<std::string> seen_local;
  for (const auto& fn : program.compiled().functions) {
    info.parallel_loops += static_cast<int>(fn.offloads.size());
    for (const auto& offload : fn.offloads) {
      for (const auto& config : offload.arrays) {
        if (std::find(seen.begin(), seen.end(), config.name) == seen.end()) {
          seen.push_back(config.name);
        }
        if (config.has_localaccess &&
            std::find(seen_local.begin(), seen_local.end(), config.name) ==
                seen_local.end()) {
          seen_local.push_back(config.name);
        }
      }
    }
  }
  info.total_arrays = static_cast<int>(seen.size());
  info.localaccess_arrays = static_cast<int>(seen_local.size());
  return info;
}

void Run() {
  const double scale = BenchScale();
  std::printf("Table II reproduction (input scale %.3g)\n", scale);

  const SourceInfo md = AnalyzeSource("md", apps::MdSource());
  const SourceInfo kmeans = AnalyzeSource("kmeans", apps::KmeansSource());
  const SourceInfo bfs = AnalyzeSource("bfs", apps::BfsSource());

  Table table({"app", "source", "input", "A: 1-GPU dev memory",
               "B: #parallel loops", "C: #kernel execs",
               "D: localaccess/arrays", "paper"});
  const runtime::ExecOptions defaults;
  translator::CompileOptions copts;
  copts.opt_level = 0;  // kernel-execution counts are per source loop
  auto apps_list = PaperApps(scale, copts);
  const SourceInfo infos[] = {md, kmeans, bfs};
  const char* sources[] = {"SHOC", "Rodinia", "SHOC"};
  const char* inputs[] = {"73728 atoms (scaled)", "kddcup-shaped (scaled)",
                          "SM-node graph (scaled)"};
  const char* paper[] = {"39.8MB/1/1/(2 of 3)", "69.2MB/2/74/(2 of 5)",
                         "444.9MB/1/10/(2 of 3)"};
  for (std::size_t a = 0; a < apps_list.size(); ++a) {
    auto platform = sim::MakeDesktopMachine(2);
    const runtime::RunReport report = apps_list[a].run(*platform, 1, defaults);
    table.AddRow({
        apps_list[a].name,
        sources[a],
        inputs[a],
        FormatBytes(report.peak_user_bytes + report.peak_system_bytes),
        std::to_string(infos[a].parallel_loops),
        std::to_string(report.kernel_executions),
        std::to_string(infos[a].localaccess_arrays) + " of " +
            std::to_string(infos[a].total_arrays),
        paper[a],
    });
  }
  table.Print("Table II — application characteristics");
  std::printf(
      "\nNotes: memory scales with ACCMG_BENCH_SCALE; kernel-execution "
      "counts\ndepend on the scaled iteration/level counts (paper: 1 / 74 / "
      "10).\n");
}

}  // namespace
}  // namespace accmg::bench

int main() { accmg::bench::Run(); }
