// Ablation (Sections III-B, IV-B4): the hierarchical reductiontoarray
// implementation vs the fallback the paper describes for stock OpenACC —
// moving the reduction out of the parallel loop and executing it
// sequentially (every (index, value) contribution crosses the bus and folds
// on the CPU).
//
// Sweep of the destination-section length on a histogram kernel shows where
// the hierarchical scheme wins and how the inter-GPU combine cost grows
// with the section length and the GPU count.
//
// Usage: bench_ablation_reduction [--json=FILE]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"

namespace accmg::bench {
namespace {

constexpr char kHistogramSource[] = R"(
void histogram(int n, int k, int* keys, int* hist) {
  #pragma acc data copyin(keys[0:n]) copy(hist[0:k])
  {
    #pragma acc localaccess(keys: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      int bucket = keys[i] % k;
      #pragma acc reductiontoarray(+: hist[0:k])
      hist[bucket] += 1;
    }
  }
}
)";

int Run(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=FILE]\n", argv[0]);
      return 2;
    }
  }
  const int n = static_cast<int>(2000000 * BenchScale() * 10);
  std::printf("reductiontoarray ablation: histogram of %d keys, desktop\n",
              n);

  const runtime::AccProgram program =
      runtime::AccProgram::FromSource("histogram", kHistogramSource);
  std::vector<std::int32_t> keys(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    keys[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
        ((static_cast<std::uint64_t>(i) * 2654435761ull) >> 7) & 0x7fffffff);
  }

  Table table({"k (section len)", "gpus", "hierarchical [ms]",
               "GPU-GPU [ms]", "naive seq. [ms]", "speedup"});
  JsonValue rows = JsonValue::Array();
  for (int k : {64, 1024, 16384, 262144}) {
    for (int gpus : {1, 2}) {
      auto platform = sim::MakeDesktopMachine(2);
      std::vector<std::int32_t> hist(static_cast<std::size_t>(k), 0);
      runtime::ProgramRunner runner(
          program, runtime::RunConfig{.platform = platform.get(),
                                      .num_gpus = gpus});
      runner.BindArray("keys", keys.data(), ir::ValType::kI32, n);
      runner.BindArray("hist", hist.data(), ir::ValType::kI32, k);
      runner.BindScalar("n", static_cast<std::int64_t>(n));
      runner.BindScalar("k", static_cast<std::int64_t>(k));
      const runtime::RunReport report = runner.Run("histogram");

      // Naive fallback model: every contribution (8 B index + 8 B value)
      // returns to the host and folds there sequentially.
      const auto& host = platform->host_spec();
      const auto& topo = platform->topology();
      const double naive =
          topo.host_link.TransferSeconds(static_cast<std::uint64_t>(n) * 16) +
          static_cast<double>(n) * 4 / (host.instr_per_sec / host.threads);

      table.AddRow({
          std::to_string(k),
          std::to_string(gpus),
          FormatFixed(report.total_seconds * 1e3, 3),
          FormatFixed(report.time[sim::TimeCategory::kGpuGpu] * 1e3, 3),
          FormatFixed(naive * 1e3, 3),
          FormatFixed(naive / report.total_seconds, 1) + "x",
      });
      rows.Push(JsonValue::Object()
                    .Set("k", k)
                    .Set("gpus", gpus)
                    .Set("hierarchical_s", report.total_seconds)
                    .Set("gpu_gpu_s", report.time[sim::TimeCategory::kGpuGpu])
                    .Set("naive_s", naive)
                    .Set("speedup", naive / report.total_seconds));
    }
  }
  table.Print("Hierarchical reduction-to-array vs sequential fallback");
  std::printf(
      "\nExpected: the hierarchical scheme wins by a large factor; its "
      "GPU-GPU\ncombine cost grows with the section length and GPU count "
      "but stays small.\n");
  if (!json_path.empty() && !WriteJsonFile(json_path, rows)) return 1;
  return 0;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Run(argc, argv); }
