// Async-pipeline overlap benchmark: the 1-D Jacobi heat stencil (the
// canonical halo-exchange workload) run with the synchronous BSP executor
// and with ExecOptions::async_pipeline, side by side, on 1/2/4 GPUs of the
// supercomputer node.
//
// What to look for: the GPU-GPU (communication) share of total time drops
// on >= 2 GPUs under the pipeline, because the halo refresh of step k rides
// the second DMA engine behind the interior sub-kernel of step k+1. The
// KERNELS share is roughly unchanged (the split launches the same work),
// and the CPU-GPU share only moves where loads were previously stuck behind
// a barrier. Results must be bit-identical and the billed transfer counts
// and byte totals must match the synchronous run exactly — the pipeline
// reorders the simulated schedule, never the traffic. kernel_launches is
// deliberately NOT compared: the boundary/interior split issues up to three
// sub-launches where the synchronous executor issues one (see
// docs/PERFORMANCE.md, "Async overlap methodology").
//
// Usage:
//   bench_async_overlap                 print the comparison table
//   bench_async_overlap --json=FILE     also dump rows as a JSON array
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::bench {
namespace {

constexpr char kHeatSource[] = R"(
void heat(int n, int steps, double alpha, double* u, double* unew) {
  #pragma acc data copy(u[0:n]) create(unew[0:n])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: stride(1), left(1), right(1)) \
                  (unew: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        int l = i - 1;
        int r = i + 1;
        if (l < 0) { l = 0; }
        if (r >= n) { r = n - 1; }
        unew[i] = u[i] + alpha * (u[l] - 2.0 * u[i] + u[r]);
      }
      #pragma acc localaccess(u: stride(1)) (unew: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        u[i] = unew[i];
      }
    }
  }
}
)";

struct RunOutcome {
  runtime::RunReport report;
  std::vector<double> u;
};

RunOutcome RunHeat(int gpus, int n, int steps, bool async) {
  auto platform = sim::MakeSupercomputerNode(4);
  std::vector<double> u(static_cast<std::size_t>(n));
  std::vector<double> unew(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    u[static_cast<std::size_t>(i)] =
        (i > n / 4 && i < n / 2) ? 100.0 : 0.0;
  }
  const auto program = runtime::AccProgram::FromSource("heat", kHeatSource);
  runtime::RunConfig config{.platform = platform.get(), .num_gpus = gpus};
  config.options.async_pipeline = async;
  runtime::ProgramRunner runner(program, config);
  runner.BindArray("u", u.data(), ir::ValType::kF64, n);
  runner.BindArray("unew", unew.data(), ir::ValType::kF64, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.BindScalar("steps", static_cast<std::int64_t>(steps));
  runner.BindScalar("alpha", 0.24);
  RunOutcome out;
  out.report = runner.Run("heat");
  out.u = std::move(u);
  return out;
}

bool SameTraffic(const sim::PlatformCounters& a,
                 const sim::PlatformCounters& b) {
  return a.h2d_transfers == b.h2d_transfers &&
         a.d2h_transfers == b.d2h_transfers &&
         a.p2p_transfers == b.p2p_transfers && a.h2d_bytes == b.h2d_bytes &&
         a.d2h_bytes == b.d2h_bytes && a.p2p_bytes == b.p2p_bytes;
}

int Main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=FILE]\n", argv[0]);
      return 2;
    }
  }

  const double scale = BenchScale();
  const int n = static_cast<int>(scale * (1 << 22));
  const int steps = 20;
  std::printf("Jacobi heat n=%d steps=%d (input scale %.3g)\n", n, steps,
              scale);

  Table table({"gpus", "mode", "GPU-GPU", "CPU-GPU", "KERNELS", "total(ms)",
               "comm share", "speedup"});
  JsonValue rows = JsonValue::Array();
  int failures = 0;
  for (const int gpus : {1, 2, 4}) {
    const RunOutcome sync_run = RunHeat(gpus, n, steps, /*async=*/false);
    const RunOutcome async_run = RunHeat(gpus, n, steps, /*async=*/true);
    if (async_run.u != sync_run.u) {
      std::printf("gpus=%d: RESULT MISMATCH between sync and async!\n", gpus);
      ++failures;
    }
    if (!SameTraffic(sync_run.report.counters, async_run.report.counters)) {
      std::printf("gpus=%d: billed transfer counters diverged!\n", gpus);
      ++failures;
    }
    for (const bool async : {false, true}) {
      const runtime::RunReport& r =
          async ? async_run.report : sync_run.report;
      const double total = r.total_seconds;
      const double comm = r.time[sim::TimeCategory::kGpuGpu];
      const double share = total > 0 ? comm / total : 0;
      table.AddRow({
          std::to_string(gpus),
          async ? "async" : "sync",
          FormatFixed(r.time[sim::TimeCategory::kGpuGpu] * 1e3, 3),
          FormatFixed(r.time[sim::TimeCategory::kCpuGpu] * 1e3, 3),
          FormatFixed(r.time[sim::TimeCategory::kKernel] * 1e3, 3),
          FormatFixed(total * 1e3, 3),
          FormatFixed(share * 100, 1) + "%",
          FormatFixed(sync_run.report.total_seconds / total, 3) + "x",
      });
      rows.Push(JsonValue::Object()
                    .Set("gpus", gpus)
                    .Set("mode", async ? "async" : "sync")
                    .Set("gpu_gpu_s", comm)
                    .Set("cpu_gpu_s", r.time[sim::TimeCategory::kCpuGpu])
                    .Set("kernels_s", r.time[sim::TimeCategory::kKernel])
                    .Set("total_s", total)
                    .Set("comm_share", share)
                    .Set("p2p_transfers", r.counters.p2p_transfers)
                    .Set("p2p_bytes", r.counters.p2p_bytes));
    }
  }
  table.Print("Sync vs async-pipeline execution, supercomputer node");
  std::printf(
      "\nExpected shape: on >= 2 GPUs the async rows show a smaller GPU-GPU "
      "column\nand comm share, with identical billed traffic and "
      "bit-identical results.\n");

  if (!json_path.empty() && !WriteJsonFile(json_path, rows)) ++failures;
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Main(argc, argv); }
