// Fusion benchmark: the optimizing mid-end's dependence-proven offload
// fusion (docs/ARCHITECTURE.md, "Optimizing mid-end"), fused (--opt-level=1,
// the default) vs unfused (--opt-level=0), on 1/2/4 GPUs of the
// supercomputer node.
//
// Workloads:
//   jacobi_heat  stencil + source-injection + copyback per step. The
//                injection loop fuses into the stencil (same iteration
//                space, writes meet reads on the same thread), deleting one
//                dirty-propagation round of the replicated `unew` per step.
//                The copyback must NOT fuse: it writes `u` while the
//                stencil reads u[i-1]/u[i+1] — a cross-offload dependence
//                that needs the exchange between the kernels.
//   kmeans       the paper app; the assignment loop fuses into the update
//                loop (membership is written and read on the same thread).
//   md           the paper app; a single loop — nothing to fuse, traffic
//                must be identical at every level (control).
//
// The run self-checks: results must be bit-identical across levels; the
// jacobi_heat injection loop must actually fuse; on >= 2 GPUs the fused
// jacobi_heat run must bill strictly fewer offload rounds and strictly
// fewer GPU-GPU bytes; no workload may ever bill MORE traffic when fused.
// Exit code 1 on any violation — CI runs this as the opt-smoke gate.
//
// Usage:
//   bench_fusion                 print the comparison table
//   bench_fusion --json=FILE     also dump rows as a JSON array
//                                (results/bench_fusion.json is the
//                                committed artifact)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::bench {
namespace {

constexpr char kJacobiHeatSource[] = R"(
void jacobi_heat(int n, int steps, double alpha, double* u, double* unew,
                 double* src) {
  #pragma acc data copy(u[0:n]) create(unew[0:n]) copyin(src[0:n])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: stride(1), left(1), right(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        int l = i - 1;
        int r = i + 1;
        if (l < 0) { l = 0; }
        if (r >= n) { r = n - 1; }
        unew[i] = u[i] + alpha * (u[l] - 2.0 * u[i] + u[r]);
      }
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        unew[i] = unew[i] + src[i];
      }
      #pragma acc localaccess(u: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        u[i] = unew[i];
      }
    }
  }
}
)";

/// Fusions recorded in a compiled program: a fused offload with k
/// constituents counts as k-1 fusions.
int CountFusions(const runtime::AccProgram& program) {
  int fusions = 0;
  for (const auto& fn : program.compiled().functions) {
    for (const auto& offload : fn.offloads) {
      if (!offload.fused.empty()) {
        fusions += static_cast<int>(offload.fused.size()) - 1;
      }
    }
  }
  return fusions;
}

struct Row {
  std::string app;
  int gpus = 0;
  int opt_level = 0;
  int fusions = 0;
  runtime::RunReport report;
};

struct Outcome {
  Row row;
  /// Raw output bytes for the bit-identical cross-level check.
  std::vector<unsigned char> output;
};

template <typename T>
void AppendBytes(std::vector<unsigned char>* out, const std::vector<T>& v) {
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  out->insert(out->end(), p, p + v.size() * sizeof(T));
}

Outcome RunJacobi(int gpus, int opt_level) {
  const double scale = BenchScale();
  const int n = std::max(1024, static_cast<int>(scale * (1 << 22)));
  const int steps = 20;
  translator::CompileOptions copts;
  copts.opt_level = opt_level;
  const runtime::AccProgram& program =
      runtime::AccProgram::Cached("jacobi_heat", kJacobiHeatSource, copts);

  auto platform = sim::MakeSupercomputerNode(4);
  std::vector<double> u(static_cast<std::size_t>(n));
  std::vector<double> unew(static_cast<std::size_t>(n), 0.0);
  std::vector<double> src(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    u[static_cast<std::size_t>(i)] = (i > n / 4 && i < n / 2) ? 100.0 : 0.0;
    src[static_cast<std::size_t>(i)] = (i % 97 == 0) ? 0.5 : 0.0;
  }
  runtime::ProgramRunner runner(
      program, runtime::RunConfig{.platform = platform.get(),
                                  .num_gpus = gpus});
  runner.BindArray("u", u.data(), ir::ValType::kF64, n);
  runner.BindArray("unew", unew.data(), ir::ValType::kF64, n);
  runner.BindArray("src", src.data(), ir::ValType::kF64, n);
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.BindScalar("steps", static_cast<std::int64_t>(steps));
  runner.BindScalar("alpha", 0.24);

  Outcome out;
  out.row = Row{"jacobi_heat", gpus, opt_level, CountFusions(program),
                runner.Run("jacobi_heat")};
  AppendBytes(&out.output, u);
  return out;
}

Outcome RunKmeans(int gpus, int opt_level) {
  static const auto* input = new apps::KmeansInput(
      apps::MakePaperKmeansInput(BenchScale()));
  translator::CompileOptions copts;
  copts.opt_level = opt_level;
  auto platform = sim::MakeSupercomputerNode(4);
  apps::KmeansResult result;
  Outcome out;
  out.row = Row{"kmeans", gpus, opt_level,
                CountFusions(runtime::AccProgram::Cached(
                    "kmeans", apps::KmeansSource(), copts)),
                apps::RunKmeansAcc(*input, *platform, gpus, &result, {},
                                   copts)};
  AppendBytes(&out.output, result.centroids);
  AppendBytes(&out.output, result.membership);
  return out;
}

Outcome RunMd(int gpus, int opt_level) {
  static const auto* input =
      new apps::MdInput(apps::MakePaperMdInput(BenchScale()));
  translator::CompileOptions copts;
  copts.opt_level = opt_level;
  auto platform = sim::MakeSupercomputerNode(4);
  std::vector<float> force;
  Outcome out;
  out.row = Row{"md", gpus, opt_level,
                CountFusions(runtime::AccProgram::Cached(
                    "md", apps::MdSource(), copts)),
                apps::RunMdAcc(*input, *platform, gpus, &force, {}, copts)};
  AppendBytes(&out.output, force);
  return out;
}

int Main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=FILE]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Offload-fusion benchmark, supercomputer node "
              "(input scale %.3g)\n", BenchScale());

  using RunFn = Outcome (*)(int, int);
  const std::pair<const char*, RunFn> workloads[] = {
      {"jacobi_heat", RunJacobi}, {"kmeans", RunKmeans}, {"md", RunMd}};

  Table table({"app", "gpus", "opt", "fusions", "total [ms]", "offloads",
               "halo", "dirty chunks", "p2p xfers", "GPU-GPU bytes"});
  JsonValue rows = JsonValue::Array();
  int failures = 0;

  for (const auto& [name, run] : workloads) {
    for (const int gpus : {1, 2, 4}) {
      const Outcome unfused = run(gpus, 0);
      const Outcome fused = run(gpus, 1);
      if (fused.output != unfused.output) {
        std::printf("%s gpus=%d: RESULT MISMATCH between opt levels!\n",
                    name, gpus);
        ++failures;
      }
      const auto& u = unfused.row.report;
      const auto& f = fused.row.report;
      if (f.counters.p2p_bytes > u.counters.p2p_bytes) {
        std::printf("%s gpus=%d: fused run billed MORE GPU-GPU bytes "
                    "(%llu > %llu)!\n", name, gpus,
                    static_cast<unsigned long long>(f.counters.p2p_bytes),
                    static_cast<unsigned long long>(u.counters.p2p_bytes));
        ++failures;
      }
      if (std::strcmp(name, "jacobi_heat") == 0) {
        if (fused.row.fusions < 1) {
          std::printf("jacobi_heat: expected >= 1 fusion at opt-level 1, "
                      "got %d\n", fused.row.fusions);
          ++failures;
        }
        if (gpus >= 2 &&
            (f.kernel_executions >= u.kernel_executions ||
             f.counters.p2p_bytes >= u.counters.p2p_bytes)) {
          std::printf("jacobi_heat gpus=%d: fusion did not reduce exchange "
                      "rounds (%llu vs %llu) and GPU-GPU bytes "
                      "(%llu vs %llu)\n", gpus,
                      static_cast<unsigned long long>(f.kernel_executions),
                      static_cast<unsigned long long>(u.kernel_executions),
                      static_cast<unsigned long long>(f.counters.p2p_bytes),
                      static_cast<unsigned long long>(u.counters.p2p_bytes));
          ++failures;
        }
      }
      for (const Outcome* o : {&unfused, &fused}) {
        const Row& row = o->row;
        const auto& r = row.report;
        table.AddRow({
            row.app,
            std::to_string(row.gpus),
            std::to_string(row.opt_level),
            std::to_string(row.fusions),
            FormatFixed(r.total_seconds * 1e3, 3),
            std::to_string(r.kernel_executions),
            std::to_string(r.comm.halo_refreshes),
            std::to_string(r.comm.dirty_chunks_sent),
            std::to_string(r.counters.p2p_transfers),
            std::to_string(r.counters.p2p_bytes),
        });
        rows.Push(JsonValue::Object()
                      .Set("app", row.app)
                      .Set("gpus", row.gpus)
                      .Set("opt_level", row.opt_level)
                      .Set("fusions", row.fusions)
                      .Set("total_s", r.total_seconds)
                      .Set("offload_runs", r.kernel_executions)
                      .Set("halo_refreshes", r.comm.halo_refreshes)
                      .Set("dirty_chunks_sent", r.comm.dirty_chunks_sent)
                      .Set("p2p_transfers", r.counters.p2p_transfers)
                      .Set("p2p_bytes", r.counters.p2p_bytes));
      }
    }
  }

  table.Print("Fused (opt 1) vs unfused (opt 0) offload execution");
  std::printf(
      "\nExpected shape: jacobi_heat and kmeans lose one offload round per "
      "iteration when\nfused, with bit-identical results; jacobi_heat on "
      ">= 2 GPUs bills strictly fewer\nGPU-GPU bytes (one dirty-propagation "
      "round of the replicated array deleted per\nstep); md is the "
      "single-loop control with identical traffic at every level.\n");

  if (!json_path.empty() && !WriteJsonFile(json_path, rows)) ++failures;
  if (failures > 0) {
    std::fprintf(stderr, "bench_fusion: %d check(s) failed\n", failures);
    return 1;
  }
  std::printf("bench_fusion: all checks passed\n");
  return 0;
}

}  // namespace
}  // namespace accmg::bench

int main(int argc, char** argv) { return accmg::bench::Main(argc, argv); }
